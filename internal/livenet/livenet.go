// Package livenet runs the checkpointing engines as a real concurrent
// system: one goroutine per process, messages over in-memory channels with
// reliable FIFO delivery, wall-clock time. It exists alongside the
// discrete-event runtime (internal/simrt) so the same engine code that
// reproduces the paper's virtual-time experiments also demonstrably works
// as a live distributed system — the examples build on this package.
package livenet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mutablecp/internal/checkpoint"
	"mutablecp/internal/protocol"
	"mutablecp/internal/trace"
)

// Config describes a live cluster.
type Config struct {
	// N is the number of processes.
	N int
	// NewEngine builds the checkpointing algorithm for one process.
	NewEngine func(env protocol.Env) protocol.Engine
	// Delay, when positive, adds an artificial network delay per message
	// (makes races observable in demos).
	Delay time.Duration
	// Trace, when non-nil, records structured events.
	Trace *trace.Log
	// OnDeliver observes computation-message deliveries.
	OnDeliver func(to, from protocol.ProcessID, payload []byte)

	// TCP mesh tuning (NewTCP clusters only; zero takes the defaults in
	// tcp.go).
	//
	// TCPWriteTimeout bounds each frame write so a wedged peer cannot
	// block a sender's event loop (default 5 s).
	TCPWriteTimeout time.Duration
	// TCPReadIdleTimeout, when positive, drops inbound connections that
	// stay silent longer than this; the sender re-dials on its next write.
	// Zero (the default) never idles a connection out.
	TCPReadIdleTimeout time.Duration
	// TCPMaxReconnects bounds the re-dial attempts one send makes on a
	// broken connection, with exponential backoff between attempts
	// (default 5).
	TCPMaxReconnects int
}

// mailbox is an unbounded FIFO queue feeding a node's event loop. Senders
// never block, which rules out inbox-exhaustion deadlocks between nodes.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(fn func()) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return
	}
	mb.queue = append(mb.queue, fn)
	mb.cond.Signal()
}

// get blocks for the next event; ok=false after close and drain.
func (mb *mailbox) get() (func(), bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.queue) == 0 {
		return nil, false
	}
	fn := mb.queue[0]
	mb.queue = mb.queue[1:]
	return fn, true
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.cond.Broadcast()
}

// Cluster is a running set of live nodes.
type Cluster struct {
	cfg   Config
	nodes []*Node
	start time.Time
	wg    sync.WaitGroup

	// mesh is non-nil for TCP-backed clusters (NewTCP).
	mesh *tcpMesh

	mu       sync.Mutex
	doneSubs map[protocol.Trigger][]chan bool
}

// New builds and starts a live cluster. Call Close to stop it.
func New(cfg Config) (*Cluster, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("livenet: need at least 2 processes, got %d", cfg.N)
	}
	if cfg.NewEngine == nil {
		return nil, errors.New("livenet: Config.NewEngine is required")
	}
	c := &Cluster{
		cfg:      cfg,
		start:    time.Now(),
		doneSubs: make(map[protocol.Trigger][]chan bool),
	}
	c.nodes = make([]*Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		c.nodes[i] = newNode(c, i)
	}
	for _, n := range c.nodes {
		n.engine = cfg.NewEngine(n)
	}
	for _, n := range c.nodes {
		n := n
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			n.loop()
		}()
	}
	return c, nil
}

// N returns the number of processes.
func (c *Cluster) N() int { return c.cfg.N }

// Node returns process i's runtime.
func (c *Cluster) Node(i protocol.ProcessID) *Node { return c.nodes[i] }

// Close stops every node and waits for the event loops to exit.
func (c *Cluster) Close() {
	if c.mesh != nil {
		c.mesh.close()
	}
	for _, n := range c.nodes {
		n.mb.close()
	}
	c.wg.Wait()
}

// Send sends one computation message (asynchronously).
func (c *Cluster) Send(from, to protocol.ProcessID, payload []byte) error {
	if from == to || from < 0 || from >= c.cfg.N || to < 0 || to >= c.cfg.N {
		return fmt.Errorf("livenet: bad send %d->%d", from, to)
	}
	n := c.nodes[from]
	n.mb.put(func() { n.sendApp(to, payload) })
	return nil
}

// Checkpoint triggers a checkpointing instance at the given process and
// waits for it to terminate (or the timeout to expire). It returns whether
// the instance committed.
func (c *Cluster) Checkpoint(initiator protocol.ProcessID, timeout time.Duration) (bool, error) {
	n := c.nodes[initiator]
	result := make(chan bool, 1)
	errCh := make(chan error, 1)
	n.mb.put(func() {
		if err := n.engine.Initiate(); err != nil {
			errCh <- err
			return
		}
		// Subscribe after Initiate so a synchronous completion (already
		// recorded in n.lastDone) is not missed.
		if n.lastDone != nil {
			result <- *n.lastDone
			n.lastDone = nil
			return
		}
		n.doneCh = result
	})
	select {
	case err := <-errCh:
		return false, err
	case committed := <-result:
		return committed, nil
	case <-time.After(timeout):
		return false, fmt.Errorf("livenet: checkpoint at P%d timed out after %v", initiator, timeout)
	}
}

// Quiesce waits until every node's mailbox has been empty for one full
// settle window (best-effort; for demos and tests).
func (c *Cluster) Quiesce(settle time.Duration) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.allIdle() {
			time.Sleep(settle)
			if c.allIdle() {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
}

func (c *Cluster) allIdle() bool {
	for _, n := range c.nodes {
		n.mb.mu.Lock()
		busy := len(n.mb.queue) > 0 || n.processing
		n.mb.mu.Unlock()
		if busy {
			return false
		}
	}
	return true
}

// PermanentLine returns every process's newest permanent checkpoint state.
func (c *Cluster) PermanentLine() map[protocol.ProcessID]protocol.State {
	out := make(map[protocol.ProcessID]protocol.State, c.cfg.N)
	for _, n := range c.nodes {
		n.storeMu.Lock()
		out[n.id] = n.stable.Permanent().State
		n.storeMu.Unlock()
	}
	return out
}

// Node is one live process.
type Node struct {
	c  *Cluster
	id protocol.ProcessID

	engine protocol.Engine
	mb     *mailbox

	storeMu sync.Mutex
	stable  *checkpoint.StableStore
	mutable *checkpoint.MutableStore

	sentTo   []uint64
	recvFrom []uint64

	blocked bool
	queue   []queued

	doneCh   chan bool
	lastDone *bool

	processing bool
}

type queued struct {
	to      protocol.ProcessID
	payload []byte
}

var _ protocol.Env = (*Node)(nil)

func newNode(c *Cluster, id protocol.ProcessID) *Node {
	return &Node{
		c:        c,
		id:       id,
		mb:       newMailbox(),
		stable:   checkpoint.NewStableStore(id, c.cfg.N),
		mutable:  checkpoint.NewMutableStore(id),
		sentTo:   make([]uint64, c.cfg.N),
		recvFrom: make([]uint64, c.cfg.N),
	}
}

// Engine returns the node's engine (callers must not invoke it directly;
// use the cluster API).
func (n *Node) Engine() protocol.Engine { return n.engine }

// Stable returns the node's stable store; lock-free reads are only safe
// after Close or Quiesce.
func (n *Node) Stable() *checkpoint.StableStore { return n.stable }

// Mutable returns the node's mutable store.
func (n *Node) Mutable() *checkpoint.MutableStore { return n.mutable }

func (n *Node) loop() {
	for {
		fn, ok := n.mb.get()
		if !ok {
			return
		}
		n.mb.mu.Lock()
		n.processing = true
		n.mb.mu.Unlock()
		fn()
		n.mb.mu.Lock()
		n.processing = false
		n.mb.mu.Unlock()
	}
}

func (n *Node) sendApp(to protocol.ProcessID, payload []byte) {
	if n.blocked {
		n.queue = append(n.queue, queued{to: to, payload: payload})
		return
	}
	m := &protocol.Message{From: n.id, To: to, Payload: payload}
	n.engine.PrepareSend(m)
	n.sentTo[to]++
	n.transmit(m)
}

func (n *Node) transmit(m *protocol.Message) {
	if n.c.mesh != nil {
		if err := n.c.mesh.send(n.id, m.To, m); err != nil {
			// The peer is gone (shutdown or failure); the checkpointing
			// protocols tolerate lost peers via abort, so drop and trace.
			n.Trace(trace.KindNote, m.To, "tcp send failed: %v", err)
		}
		return
	}
	dst := n.c.nodes[m.To]
	deliver := func() { dst.mb.put(func() { dst.engine.HandleMessage(m) }) }
	if n.c.cfg.Delay > 0 {
		time.AfterFunc(n.c.cfg.Delay, deliver)
		return
	}
	deliver()
}

// --- protocol.Env ---

// ID implements protocol.Env.
func (n *Node) ID() protocol.ProcessID { return n.id }

// N implements protocol.Env.
func (n *Node) N() int { return n.c.cfg.N }

// Now implements protocol.Env.
func (n *Node) Now() time.Duration { return time.Since(n.c.start) }

// Send implements protocol.Env.
func (n *Node) Send(m *protocol.Message) {
	m.From = n.id
	n.transmit(m)
}

// Broadcast implements protocol.Env.
func (n *Node) Broadcast(m *protocol.Message) {
	m.From = n.id
	for to := 0; to < n.c.cfg.N; to++ {
		if to == n.id {
			continue
		}
		cp := *m
		cp.To = to
		n.transmit(&cp)
	}
}

// CaptureState implements protocol.Env.
func (n *Node) CaptureState() protocol.State {
	return protocol.State{
		Proc:     n.id,
		SentTo:   append([]uint64(nil), n.sentTo...),
		RecvFrom: append([]uint64(nil), n.recvFrom...),
		At:       n.Now(),
	}
}

// SaveTentative implements protocol.Env.
func (n *Node) SaveTentative(s protocol.State, trig protocol.Trigger) {
	n.storeMu.Lock()
	defer n.storeMu.Unlock()
	if err := n.stable.SaveTentative(s, trig, n.Now()); err != nil {
		panic(fmt.Sprintf("livenet P%d: %v", n.id, err))
	}
}

// SaveMutable implements protocol.Env.
func (n *Node) SaveMutable(s protocol.State, trig protocol.Trigger) {
	n.storeMu.Lock()
	defer n.storeMu.Unlock()
	if err := n.mutable.Save(s, trig, n.Now()); err != nil {
		panic(fmt.Sprintf("livenet P%d: %v", n.id, err))
	}
}

// PromoteMutable implements protocol.Env.
func (n *Node) PromoteMutable(trig protocol.Trigger) {
	n.storeMu.Lock()
	defer n.storeMu.Unlock()
	rec, err := n.mutable.Take(trig)
	if err != nil {
		panic(fmt.Sprintf("livenet P%d: %v", n.id, err))
	}
	if err := n.stable.SaveTentative(rec.State, trig, n.Now()); err != nil {
		panic(fmt.Sprintf("livenet P%d: %v", n.id, err))
	}
}

// DiscardMutable implements protocol.Env.
func (n *Node) DiscardMutable(trig protocol.Trigger) {
	n.storeMu.Lock()
	defer n.storeMu.Unlock()
	if _, err := n.mutable.Take(trig); err != nil {
		panic(fmt.Sprintf("livenet P%d: %v", n.id, err))
	}
}

// MakePermanent implements protocol.Env.
func (n *Node) MakePermanent(trig protocol.Trigger) {
	n.storeMu.Lock()
	defer n.storeMu.Unlock()
	if err := n.stable.MakePermanent(trig, n.Now()); err != nil {
		panic(fmt.Sprintf("livenet P%d: %v", n.id, err))
	}
}

// DropTentative implements protocol.Env.
func (n *Node) DropTentative(trig protocol.Trigger) {
	n.storeMu.Lock()
	defer n.storeMu.Unlock()
	if err := n.stable.DropTentative(trig); err != nil {
		panic(fmt.Sprintf("livenet P%d: %v", n.id, err))
	}
}

// DeliverApp implements protocol.Env.
func (n *Node) DeliverApp(m *protocol.Message) {
	n.recvFrom[m.From]++
	if n.c.cfg.OnDeliver != nil {
		n.c.cfg.OnDeliver(n.id, m.From, m.Payload)
	}
}

// BlockApp implements protocol.Env.
func (n *Node) BlockApp() { n.blocked = true }

// UnblockApp implements protocol.Env.
func (n *Node) UnblockApp() {
	if !n.blocked {
		return
	}
	n.blocked = false
	q := n.queue
	n.queue = nil
	for _, s := range q {
		n.sendApp(s.to, s.payload)
	}
}

// CheckpointingDone implements protocol.Env.
func (n *Node) CheckpointingDone(trig protocol.Trigger, committed bool) {
	if n.doneCh != nil {
		n.doneCh <- committed
		n.doneCh = nil
		return
	}
	v := committed
	n.lastDone = &v
}

// Trace implements protocol.Env.
func (n *Node) Trace(kind trace.Kind, peer int, format string, args ...any) {
	if n.c.cfg.Trace == nil {
		return
	}
	n.c.cfg.Trace.Addf(n.Now(), kind, n.id, peer, format, args...)
}

// Tracing implements protocol.Env.
func (n *Node) Tracing() bool { return n.c.cfg.Trace != nil }
