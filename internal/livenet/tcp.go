package livenet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"mutablecp/internal/protocol"
	"mutablecp/internal/wire"
)

// TCP support: the same live cluster, but every message crosses a real
// loopback TCP connection through the wire codec. One connection per
// ordered process pair keeps per-channel FIFO delivery for free (TCP
// ordering), matching the computation model.

// tcpMesh owns the listeners and connections of a TCP-backed cluster.
type tcpMesh struct {
	n         int
	listeners []net.Listener
	// out[i][j] is the encoder for the i->j channel.
	out [][]*wire.Encoder
	// conns collects every connection for Close.
	mu    sync.Mutex
	conns []net.Conn
	wg    sync.WaitGroup

	closed chan struct{}
}

// NewTCP builds and starts a live cluster whose messages travel over
// loopback TCP. The caller must Close the returned cluster.
func NewTCP(cfg Config) (*Cluster, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("livenet: need at least 2 processes, got %d", cfg.N)
	}
	if cfg.NewEngine == nil {
		return nil, errors.New("livenet: Config.NewEngine is required")
	}
	mesh := &tcpMesh{n: cfg.N, closed: make(chan struct{})}
	if err := mesh.listen(); err != nil {
		return nil, err
	}

	c, err := New(cfg)
	if err != nil {
		mesh.close()
		return nil, err
	}
	c.mesh = mesh
	if err := mesh.dial(); err != nil {
		c.Close()
		return nil, err
	}
	mesh.accept(c)
	return c, nil
}

// listen opens one listener per process on an ephemeral loopback port.
func (m *tcpMesh) listen() error {
	m.listeners = make([]net.Listener, m.n)
	for i := 0; i < m.n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			m.close()
			return fmt.Errorf("livenet: listen P%d: %w", i, err)
		}
		m.listeners[i] = ln
	}
	return nil
}

// dial connects every ordered pair i->j.
func (m *tcpMesh) dial() error {
	m.out = make([][]*wire.Encoder, m.n)
	for i := 0; i < m.n; i++ {
		m.out[i] = make([]*wire.Encoder, m.n)
		for j := 0; j < m.n; j++ {
			if i == j {
				continue
			}
			conn, err := net.Dial("tcp", m.listeners[j].Addr().String())
			if err != nil {
				return fmt.Errorf("livenet: dial P%d->P%d: %w", i, j, err)
			}
			m.mu.Lock()
			m.conns = append(m.conns, conn)
			m.mu.Unlock()
			m.out[i][j] = wire.NewEncoder(conn)
		}
	}
	return nil
}

// accept spawns the reader loops: every inbound connection feeds the
// destination node's mailbox in arrival order.
func (m *tcpMesh) accept(c *Cluster) {
	for j := 0; j < m.n; j++ {
		j := j
		ln := m.listeners[j]
		// Each process accepts N-1 inbound connections.
		for k := 0; k < m.n-1; k++ {
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				conn, err := ln.Accept()
				if err != nil {
					return // closed during shutdown
				}
				m.mu.Lock()
				m.conns = append(m.conns, conn)
				m.mu.Unlock()
				m.readLoop(c, j, conn)
			}()
		}
	}
}

func (m *tcpMesh) readLoop(c *Cluster, dst protocol.ProcessID, conn net.Conn) {
	dec := wire.NewDecoder(conn)
	node := c.nodes[dst]
	for {
		msg, err := dec.Decode()
		if err != nil {
			if err != io.EOF {
				select {
				case <-m.closed:
				default:
					// Connection-level failure outside shutdown: surface
					// once via the trace if enabled; messages on other
					// channels continue.
				}
			}
			return
		}
		m := msg
		node.mb.put(func() { node.engine.HandleMessage(m) })
	}
}

// send transmits one message on the i->j connection.
func (m *tcpMesh) send(from, to protocol.ProcessID, msg *protocol.Message) error {
	enc := m.out[from][to]
	if enc == nil {
		return fmt.Errorf("livenet: no connection P%d->P%d", from, to)
	}
	return enc.Encode(msg)
}

func (m *tcpMesh) close() {
	select {
	case <-m.closed:
	default:
		close(m.closed)
	}
	for _, ln := range m.listeners {
		if ln != nil {
			ln.Close() //nolint:errcheck
		}
	}
	m.mu.Lock()
	conns := m.conns
	m.conns = nil
	m.mu.Unlock()
	for _, conn := range conns {
		conn.Close() //nolint:errcheck
	}
	m.wg.Wait()
}
