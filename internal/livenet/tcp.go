package livenet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mutablecp/internal/protocol"
	"mutablecp/internal/wire"
)

// TCP support: the same live cluster, but every message crosses a real
// loopback TCP connection through the wire codec. One connection per
// ordered process pair keeps per-channel FIFO delivery for free (TCP
// ordering), matching the computation model.
//
// The mesh is failure-hardened: every write carries a deadline so a wedged
// peer cannot block a sender's event loop, reads idle out when configured,
// and a broken connection is re-dialed with exponential backoff on the
// next send. The backoff schedule lives on the Link — per channel, not
// per send — so a peer that stays down keeps escalating instead of being
// hammered at the base interval by every send. Listeners accept forever,
// not a fixed number of times, so re-dialed connections are served.

// TCP mesh defaults; override via the Config fields of the same name.
const (
	defaultTCPWriteTimeout  = 5 * time.Second
	defaultTCPMaxReconnects = 5
	tcpReconnectBackoff     = 10 * time.Millisecond
)

// tcpMesh owns the listeners and connections of a TCP-backed cluster.
type tcpMesh struct {
	n         int
	listeners []net.Listener
	// links[i][j] is the i->j channel (nil on the diagonal).
	links [][]*Link

	readIdle time.Duration
	linkOpts LinkOptions

	// conns collects receiver-side connections for Close.
	mu    sync.Mutex
	conns []net.Conn
	wg    sync.WaitGroup

	closed chan struct{}
}

// NewTCP builds and starts a live cluster whose messages travel over
// loopback TCP. The caller must Close the returned cluster.
func NewTCP(cfg Config) (*Cluster, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("livenet: need at least 2 processes, got %d", cfg.N)
	}
	if cfg.NewEngine == nil {
		return nil, errors.New("livenet: Config.NewEngine is required")
	}
	mesh := &tcpMesh{
		n:        cfg.N,
		readIdle: cfg.TCPReadIdleTimeout,
		linkOpts: LinkOptions{
			WriteTimeout: cfg.TCPWriteTimeout,
			MaxAttempts:  cfg.TCPMaxReconnects,
		},
		closed: make(chan struct{}),
	}
	if err := mesh.listen(); err != nil {
		return nil, err
	}

	c, err := New(cfg)
	if err != nil {
		mesh.close()
		return nil, err
	}
	c.mesh = mesh
	if err := mesh.dial(); err != nil {
		c.Close()
		return nil, err
	}
	mesh.accept(c)
	return c, nil
}

// KillConnection abruptly closes the from->to TCP connection (fault
// injection for tests). The sender discovers the break on its next write
// and reconnects with backoff; in-flight frames on the dead socket are
// lost, frames sent afterwards are not.
func (c *Cluster) KillConnection(from, to protocol.ProcessID) error {
	if c.mesh == nil {
		return errors.New("livenet: not a TCP-backed cluster")
	}
	return c.mesh.kill(from, to)
}

// listen opens one listener per process on an ephemeral loopback port.
func (m *tcpMesh) listen() error {
	m.listeners = make([]net.Listener, m.n)
	for i := 0; i < m.n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			m.close()
			return fmt.Errorf("livenet: listen P%d: %w", i, err)
		}
		m.listeners[i] = ln
	}
	return nil
}

// dial eagerly connects every ordered pair i->j so startup failures
// surface immediately; later breaks are repaired lazily by send.
func (m *tcpMesh) dial() error {
	m.links = make([][]*Link, m.n)
	for i := 0; i < m.n; i++ {
		m.links[i] = make([]*Link, m.n)
		for j := 0; j < m.n; j++ {
			if i == j {
				continue
			}
			l := NewLink(m.listeners[j].Addr().String(), m.linkOpts)
			if err := l.Connect(); err != nil {
				return fmt.Errorf("livenet: dial P%d->P%d: %w", i, j, err)
			}
			m.links[i][j] = l
		}
	}
	return nil
}

// accept spawns one persistent accept loop per process: every inbound
// connection — initial or re-dialed — feeds the destination node's mailbox
// in arrival order until the listener closes.
func (m *tcpMesh) accept(c *Cluster) {
	for j := 0; j < m.n; j++ {
		j := j
		ln := m.listeners[j]
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for {
				conn, err := ln.Accept()
				if err != nil {
					return // listener closed during shutdown
				}
				m.mu.Lock()
				m.conns = append(m.conns, conn)
				m.mu.Unlock()
				m.wg.Add(1)
				go func() {
					defer m.wg.Done()
					m.readLoop(c, j, conn)
				}()
			}
		}()
	}
}

func (m *tcpMesh) readLoop(c *Cluster, dst protocol.ProcessID, conn net.Conn) {
	defer conn.Close() //nolint:errcheck
	dec := wire.NewDecoder(conn)
	node := c.nodes[dst]
	for {
		if m.readIdle > 0 {
			conn.SetReadDeadline(time.Now().Add(m.readIdle)) //nolint:errcheck
		}
		msg, err := dec.Decode()
		if err != nil {
			// EOF, idle timeout, or a torn frame: drop the connection. The
			// sender re-dials on its next write; frames are self-contained,
			// so the stream restarts cleanly.
			return
		}
		m := msg
		node.mb.put(func() { node.engine.HandleMessage(m) })
	}
}

// send frames one message and transmits it on the i->j link. Reconnection
// and backoff are the link's business.
func (m *tcpMesh) send(from, to protocol.ProcessID, msg *protocol.Message) error {
	l := m.links[from][to]
	if l == nil {
		return fmt.Errorf("livenet: no connection P%d->P%d", from, to)
	}
	select {
	case <-m.closed:
		return errors.New("livenet: mesh closed")
	default:
	}
	frame, err := wire.AppendMessage(nil, msg)
	if err != nil {
		return err
	}
	return l.Send(frame)
}

// kill closes the pair's socket through the link's fault-injection hook:
// the next send runs the full failure path — write error, re-dial, retry.
func (m *tcpMesh) kill(from, to protocol.ProcessID) error {
	if from < 0 || from >= m.n || to < 0 || to >= m.n || from == to {
		return fmt.Errorf("livenet: bad channel P%d->P%d", from, to)
	}
	m.links[from][to].Kill()
	return nil
}

func (m *tcpMesh) close() {
	select {
	case <-m.closed:
	default:
		close(m.closed)
	}
	for _, ln := range m.listeners {
		if ln != nil {
			ln.Close() //nolint:errcheck
		}
	}
	for _, row := range m.links {
		for _, l := range row {
			if l != nil {
				l.Close()
			}
		}
	}
	m.mu.Lock()
	conns := m.conns
	m.conns = nil
	m.mu.Unlock()
	for _, conn := range conns {
		conn.Close() //nolint:errcheck
	}
	m.wg.Wait()
}
