package livenet_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mutablecp/internal/consistency"
	"mutablecp/internal/core"
	"mutablecp/internal/harness"
	"mutablecp/internal/livenet"
	"mutablecp/internal/protocol"
)

func newLive(t *testing.T, n int, algo string) *livenet.Cluster {
	t.Helper()
	factory, err := harness.NewEngine(algo)
	if err != nil {
		t.Fatal(err)
	}
	c, err := livenet.New(livenet.Config{N: n, NewEngine: factory})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestLiveCheckpointCommits(t *testing.T) {
	c := newLive(t, 4, harness.AlgoMutable)
	for i := 0; i < 20; i++ {
		from := i % 4
		to := (i + 1) % 4
		if err := c.Send(from, to, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.Quiesce(10 * time.Millisecond)
	committed, err := c.Checkpoint(0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatal("live checkpoint aborted")
	}
	c.Quiesce(10 * time.Millisecond)
	if err := consistency.Check(c.PermanentLine()); err != nil {
		t.Fatal(err)
	}
}

func TestLiveDeliveryCountsAndOrder(t *testing.T) {
	var mu sync.Mutex
	var got []int
	factory := func(env protocol.Env) protocol.Engine { return core.New(env) }
	c, err := livenet.New(livenet.Config{
		N:         3,
		NewEngine: factory,
		OnDeliver: func(to, from protocol.ProcessID, payload []byte) {
			if to == 1 && from == 0 {
				mu.Lock()
				got = append(got, int(payload[0]))
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 100; i++ {
		if err := c.Send(0, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.Quiesce(10 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 100 {
		t.Fatalf("delivered %d, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at %d: %v", i, got[:i+1])
		}
	}
}

func TestLiveCheckpointUnderConcurrentTraffic(t *testing.T) {
	c := newLive(t, 6, harness.AlgoMutable)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				to := (g + 1 + i%5) % 6
				if to != g {
					_ = c.Send(g, to, nil)
				}
				i++
				time.Sleep(100 * time.Microsecond)
			}
		}()
	}
	for round := 0; round < 5; round++ {
		committed, err := c.Checkpoint(round%6, 10*time.Second)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !committed {
			t.Fatalf("round %d aborted", round)
		}
	}
	close(stop)
	wg.Wait()
	c.Quiesce(20 * time.Millisecond)
	if err := consistency.Check(c.PermanentLine()); err != nil {
		t.Fatalf("inconsistent under live traffic: %v", err)
	}
}

func TestLiveAllAlgorithms(t *testing.T) {
	for _, algo := range []string{harness.AlgoMutable, harness.AlgoKooToueg, harness.AlgoElnozahy, harness.AlgoChandyLamport} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			c := newLive(t, 4, algo)
			for i := 0; i < 12; i++ {
				_ = c.Send(i%4, (i+1)%4, nil)
			}
			c.Quiesce(10 * time.Millisecond)
			committed, err := c.Checkpoint(1, 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if !committed {
				t.Fatal("aborted")
			}
			c.Quiesce(10 * time.Millisecond)
			if err := consistency.Check(c.PermanentLine()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLiveWithNetworkDelay(t *testing.T) {
	factory, _ := harness.NewEngine(harness.AlgoMutable)
	c, err := livenet.New(livenet.Config{N: 4, NewEngine: factory, Delay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 8; i++ {
		_ = c.Send(i%4, (i+2)%4, nil)
	}
	committed, err := c.Checkpoint(2, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatal("aborted")
	}
}

func TestLiveBadSendRejected(t *testing.T) {
	c := newLive(t, 2, harness.AlgoMutable)
	if err := c.Send(0, 0, nil); err == nil {
		t.Fatal("self-send accepted")
	}
	if err := c.Send(0, 9, nil); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestLiveConfigValidation(t *testing.T) {
	if _, err := livenet.New(livenet.Config{N: 1}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := livenet.New(livenet.Config{N: 3}); err == nil {
		t.Fatal("nil factory accepted")
	}
}

func TestLiveSequentialCheckpointsAdvanceLine(t *testing.T) {
	c := newLive(t, 3, harness.AlgoMutable)
	var lastCSN int
	for round := 1; round <= 3; round++ {
		_ = c.Send(1, 0, nil)
		_ = c.Send(0, 2, nil)
		c.Quiesce(5 * time.Millisecond)
		committed, err := c.Checkpoint(0, 5*time.Second)
		if err != nil || !committed {
			t.Fatalf("round %d: committed=%v err=%v", round, committed, err)
		}
		c.Quiesce(5 * time.Millisecond)
		line := c.PermanentLine()
		if line[0].CSN <= lastCSN {
			t.Fatalf("round %d: P0 csn did not advance (%d)", round, line[0].CSN)
		}
		lastCSN = line[0].CSN
		if err := consistency.Check(line); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLiveTimeout(t *testing.T) {
	// A 0-timeout checkpoint on a cluster with pending dependencies
	// reports a timeout error rather than hanging.
	c := newLive(t, 3, harness.AlgoMutable)
	_ = c.Send(1, 0, nil)
	c.Quiesce(5 * time.Millisecond)
	_, err := c.Checkpoint(0, time.Nanosecond)
	if err == nil {
		t.Skip("checkpoint won the race against a nanosecond timeout")
	}
	if fmt.Sprint(err) == "" {
		t.Fatal("empty error")
	}
	// Let the instance finish in the background before Close.
	c.Quiesce(10 * time.Millisecond)
}
