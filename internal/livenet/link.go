package livenet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Link is the sender side of one TCP channel: it owns the connection to a
// fixed peer address, repairs it when broken, and writes pre-framed bytes
// (internal/wire frames) with a deadline so a wedged peer cannot block
// the caller forever. The in-process mesh (NewTCP clusters) holds one per
// ordered pair; the multi-process daemon (internal/daemon) holds one per
// peer.
//
// Reconnect backoff is per-link state, not per-send: a peer that stays
// down keeps escalating the schedule across sends instead of restarting
// it at the base every time (the old per-send schedule hammered a dead
// peer at the base rate forever — each send retried from 10 ms no matter
// how long the peer had been gone). A successful write resets the
// schedule.
type Link struct {
	mu   sync.Mutex
	addr string
	opts LinkOptions

	conn net.Conn
	w    *bufio.Writer

	// backoff is the sleep the next dial attempt pays; zero means dial
	// immediately. It escalates exponentially across failed attempts —
	// whether those attempts happen inside one send or across many — and
	// resets only on a successful write.
	backoff time.Duration

	dialFailures uint64
	closed       bool
}

// LinkOptions tunes a Link. The zero value takes the defaults.
type LinkOptions struct {
	// WriteTimeout bounds each frame write (default 5 s).
	WriteTimeout time.Duration
	// MaxAttempts bounds the dial attempts one Send makes on a broken
	// connection (default 5). The backoff schedule is NOT per-send: it
	// carries over to the next Send where the peer stays down.
	MaxAttempts int
	// BaseBackoff is the first re-dial delay (default 10 ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the escalation (default 1 s).
	MaxBackoff time.Duration
	// OnConnect, when non-nil, runs on every freshly dialed connection
	// before any frame is written (handshakes); an error counts as a dial
	// failure.
	OnConnect func(conn net.Conn) error
}

func (o LinkOptions) defaults() LinkOptions {
	if o.WriteTimeout == 0 {
		o.WriteTimeout = defaultTCPWriteTimeout
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = defaultTCPMaxReconnects
	}
	if o.BaseBackoff == 0 {
		o.BaseBackoff = tcpReconnectBackoff
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = time.Second
	}
	return o
}

// ErrLinkClosed is returned by operations on a closed link.
var ErrLinkClosed = errors.New("livenet: link closed")

// NewLink returns an unconnected link to addr. The first Send (or an
// explicit Connect) dials it.
func NewLink(addr string, opts LinkOptions) *Link {
	return &Link{addr: addr, opts: opts.defaults()}
}

// Addr returns the peer address.
func (l *Link) Addr() string { return l.addr }

// Connect dials the peer now if not connected, without sleeping: one
// attempt, so bootstrap layers can drive their own retry cadence.
func (l *Link) Connect() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLinkClosed
	}
	if l.conn != nil {
		return nil
	}
	return l.dialLocked()
}

// Connected reports whether the link currently holds a live connection.
func (l *Link) Connected() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.conn != nil
}

// Backoff returns the delay the next dial attempt will pay (zero right
// after a successful write). Exposed for the reconnect-schedule
// regression test and for operational introspection.
func (l *Link) Backoff() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.backoff
}

// DialFailures counts failed dial attempts since the link was created.
func (l *Link) DialFailures() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dialFailures
}

// dialLocked dials and runs the handshake; the caller holds l.mu. On
// failure the backoff escalates; it resets only on a later successful
// write (a dial can succeed against a half-open peer and still fail the
// first write, so the write is the real evidence of health).
func (l *Link) dialLocked() error {
	conn, err := net.Dial("tcp", l.addr)
	if err == nil && l.opts.OnConnect != nil {
		if herr := l.opts.OnConnect(conn); herr != nil {
			conn.Close() //nolint:errcheck
			conn, err = nil, herr
		}
	}
	if err != nil {
		l.dialFailures++
		l.escalateLocked()
		return err
	}
	l.conn = conn
	l.w = bufio.NewWriter(conn)
	return nil
}

func (l *Link) escalateLocked() {
	if l.backoff == 0 {
		l.backoff = l.opts.BaseBackoff
		return
	}
	l.backoff *= 2
	if l.backoff > l.opts.MaxBackoff {
		l.backoff = l.opts.MaxBackoff
	}
}

// Send writes one pre-framed byte sequence (one frame or a coalesced
// batch from wire.AppendMessage/AppendValue) and flushes. A broken
// connection is re-dialed up to MaxAttempts times within this call,
// honouring the link's persistent backoff schedule.
func (l *Link) Send(frame []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < l.opts.MaxAttempts; attempt++ {
		if l.closed {
			return ErrLinkClosed
		}
		if l.conn == nil {
			if l.backoff > 0 {
				// Sleeping under the lock is deliberate: the link is a FIFO
				// channel, so letting another Send overtake would reorder
				// frames.
				time.Sleep(l.backoff)
			}
			if err := l.dialLocked(); err != nil {
				lastErr = err
				continue
			}
		}
		l.conn.SetWriteDeadline(time.Now().Add(l.opts.WriteTimeout)) //nolint:errcheck
		_, werr := l.w.Write(frame)
		if werr == nil {
			werr = l.w.Flush()
		}
		if werr == nil {
			l.backoff = 0
			return nil
		}
		lastErr = werr
		l.dropConnLocked()
		l.escalateLocked()
	}
	return fmt.Errorf("livenet: send to %s after %d attempts: %w", l.addr, l.opts.MaxAttempts, lastErr)
}

// dropConnLocked closes and forgets the connection; the caller holds l.mu.
func (l *Link) dropConnLocked() {
	if l.conn != nil {
		l.conn.Close() //nolint:errcheck
		l.conn = nil
		l.w = nil
	}
}

// Kill abruptly closes the socket but leaves the link usable (fault
// injection): the next Send discovers the break on its write and runs the
// full failure path.
func (l *Link) Kill() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn != nil {
		l.conn.Close() //nolint:errcheck
	}
}

// Close shuts the link down; all later operations fail.
func (l *Link) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.dropConnLocked()
}
