package des

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Shards is a conservatively synchronized parallel composition of K
// Simulators, one per cell/MSS. It implements the classic conservative
// PDES discipline: virtual time advances in windows of length equal to
// the lookahead (the minimum cross-shard latency), every shard executes
// its local events for the window concurrently, and cross-shard events
// are exchanged only at window barriers.
//
// The lookahead contract makes this safe: an event executing at time t
// may Post work to another shard only with delay >= lookahead, so the
// earliest cross-shard effect of anything in window [W, W+L) lands at or
// after W+L — a window the destination shard has not started. No shard
// can ever receive an event in its past.
//
// Determinism: within a window each shard is an ordinary single-threaded
// Simulator, and at the barrier the buffered posts are merged in
// (arrival time, source shard, per-source post order) — a total order
// independent of which worker finished first. The result is byte-
// identical for any worker count, which is what lets a -race run with
// workers=GOMAXPROCS be checked against workers=1 fingerprints. This is
// the same deterministic fan-out/merge discipline harness.Parallel uses
// for per-seed runs, applied inside a single simulation.
type Shards struct {
	sims      []*Simulator
	lookahead time.Duration
	workers   int

	// outboxes[src] buffers cross-shard posts made by shard src during
	// the current window. Each is written only by the goroutine running
	// shard src, so no locking is needed; the barrier drains them all.
	outboxes [][]crossPost
	// postSeq[src] numbers shard src's posts, the final tie-breaker in
	// the deterministic barrier merge.
	postSeq []uint64

	// stopped is set by Stop, possibly from an event callback on any
	// shard's worker goroutine, and read at window barriers.
	stopped atomic.Bool
}

// crossPost is one buffered cross-shard event.
type crossPost struct {
	at  time.Duration
	to  int
	src int
	seq uint64
	fn  func()
}

// NewShards builds K empty simulators coupled with the given lookahead.
// The lookahead must be positive: a zero-latency topology admits no
// conservative parallelism.
func NewShards(k int, lookahead time.Duration) *Shards {
	if k < 1 {
		panic("des: Shards needs at least one shard")
	}
	if lookahead <= 0 {
		panic("des: Shards lookahead must be positive")
	}
	s := &Shards{
		sims:      make([]*Simulator, k),
		lookahead: lookahead,
		workers:   runtime.GOMAXPROCS(0),
		outboxes:  make([][]crossPost, k),
		postSeq:   make([]uint64, k),
	}
	for i := range s.sims {
		s.sims[i] = New()
	}
	return s
}

// K returns the shard count.
func (s *Shards) K() int { return len(s.sims) }

// Lookahead returns the conservative synchronization window length.
func (s *Shards) Lookahead() time.Duration { return s.lookahead }

// Shard returns shard i's simulator. Scheduling on it directly is safe
// before Run/RunAll and inside that shard's own event callbacks.
func (s *Shards) Shard(i int) *Simulator { return s.sims[i] }

// SetWorkers bounds how many shards execute concurrently per window.
// w <= 0 selects GOMAXPROCS. The simulation result is identical for
// every value; 1 runs the sharded model sequentially.
func (s *Shards) SetWorkers(w int) {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	s.workers = w
}

// Post schedules fn on shard dst, delay after shard src's current
// virtual time. It must be called from an event callback running on
// shard src (or between windows), and delay must be at least the
// lookahead — the conservative contract that makes the window execution
// safe. Posts become visible to the destination at the next barrier.
func (s *Shards) Post(src, dst int, delay time.Duration, fn func()) {
	if delay < s.lookahead {
		panic(fmt.Sprintf("des: cross-shard post with delay %v below lookahead %v", delay, s.lookahead))
	}
	if src == dst {
		// Same-shard work needs no barrier; schedule directly.
		s.sims[src].Schedule(delay, fn)
		return
	}
	s.postSeq[src]++
	s.outboxes[src] = append(s.outboxes[src], crossPost{
		at:  s.sims[src].Now() + delay,
		to:  dst,
		src: src,
		seq: s.postSeq[src],
		fn:  fn,
	})
}

// Stop makes the current Run or RunAll return ErrStopped at the next
// window barrier. Safe to call from any shard's event callback.
func (s *Shards) Stop() { s.stopped.Store(true) }

// Executed reports the total events fired across all shards.
func (s *Shards) Executed() uint64 {
	var n uint64
	for _, sim := range s.sims {
		n += sim.Executed()
	}
	return n
}

// Pending reports the total live scheduled events across all shards.
func (s *Shards) Pending() int {
	n := 0
	for _, sim := range s.sims {
		n += sim.Pending()
	}
	return n
}

// Now returns the common virtual time of the last completed barrier
// (every shard's clock agrees between windows).
func (s *Shards) Now() time.Duration { return s.sims[0].Now() }

// nextEventAt returns the earliest pending event time across shards.
func (s *Shards) nextEventAt() (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, sim := range s.sims {
		if at, ok := sim.NextEventAt(); ok && (!found || at < best) {
			best, found = at, true
		}
	}
	return best, found
}

// runWindow executes every shard up to bound on the worker pool, then
// merges the buffered cross-shard posts deterministically. It mirrors
// the index-ordered job discipline of harness.RunJobs: results (and the
// merge) never depend on completion order.
func (s *Shards) runWindow(bound time.Duration) {
	k := len(s.sims)
	workers := s.workers
	if workers > k {
		workers = k
	}
	if workers <= 1 {
		for _, sim := range s.sims {
			sim.Run(bound) //nolint:errcheck // per-shard Stop is surfaced via s.stopped
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range jobs {
					s.sims[i].Run(bound) //nolint:errcheck
				}
			}()
		}
		for i := 0; i < k; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	s.mergePosts()
}

// mergePosts drains every outbox and schedules the posts on their
// destination shards in (at, src, seq) order — a total order over all
// posts of the window that no worker interleaving can perturb, so the
// destination simulators assign identical internal sequence numbers on
// every run.
func (s *Shards) mergePosts() {
	total := 0
	for _, box := range s.outboxes {
		total += len(box)
	}
	if total == 0 {
		return
	}
	merged := make([]crossPost, 0, total)
	for _, box := range s.outboxes {
		merged = append(merged, box...)
	}
	for i := range s.outboxes {
		s.outboxes[i] = s.outboxes[i][:0]
	}
	// Each outbox is already in (at nondecreasing? no — at = now+delay
	// with varying delays) post order; sort the concatenation by the
	// deterministic total order.
	sortPosts(merged)
	for _, p := range merged {
		s.sims[p.to].ScheduleAt(p.at, p.fn)
	}
}

// sortPosts orders by (at, src, seq). Insertion sort: windows carry few
// cross posts, and the input is mostly sorted (concatenation of
// per-source runs ordered by seq).
func sortPosts(ps []crossPost) {
	for i := 1; i < len(ps); i++ {
		p := ps[i]
		j := i - 1
		for j >= 0 && postAfter(&ps[j], &p) {
			ps[j+1] = ps[j]
			j--
		}
		ps[j+1] = p
	}
}

func postAfter(a, b *crossPost) bool {
	if a.at != b.at {
		return a.at > b.at
	}
	if a.src != b.src {
		return a.src > b.src
	}
	return a.seq > b.seq
}

// Run advances every shard to the horizon in lookahead windows. Between
// windows the shards' clocks are equal; on return every clock sits at
// the horizon. Windows fast-forward over empty stretches: the next
// window starts at the earliest pending event across all shards.
func (s *Shards) Run(horizon time.Duration) error {
	s.stopped.Store(false)
	for {
		if s.stopped.Load() {
			return ErrStopped
		}
		next, ok := s.nextEventAt()
		if !ok || next > horizon {
			break
		}
		bound := next + s.lookahead
		if bound > horizon {
			bound = horizon
		}
		s.runWindow(bound)
	}
	// Advance every clock to the horizon (mirrors Simulator.Run).
	for _, sim := range s.sims {
		sim.Run(horizon) //nolint:errcheck
	}
	return nil
}

// RunAll fires events until every shard's queue drains and no cross
// posts remain, with no horizon. Use only with terminating workloads.
func (s *Shards) RunAll() error {
	s.stopped.Store(false)
	for {
		if s.stopped.Load() {
			return ErrStopped
		}
		next, ok := s.nextEventAt()
		if !ok {
			return nil
		}
		s.runWindow(next + s.lookahead)
	}
}
