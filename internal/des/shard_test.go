package des_test

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"mutablecp/internal/des"
	"mutablecp/internal/xrand"
)

// shardModel is a small deterministic workload over K shards: each shard
// runs a local event cadence and randomly posts cross-shard work (with
// delay >= lookahead). Every fired event folds (shard, virtual time,
// event tag) into a digest, so two runs with equal digests executed the
// same events at the same times in the same per-shard order.
type shardModel struct {
	shards *des.Shards
	rngs   []*xrand.Stream
	digs   []uint64 // per-shard FNV accumulators (merged deterministically)
	counts []int
}

func newShardModel(k int, seed uint64, lookahead time.Duration) *shardModel {
	m := &shardModel{
		shards: des.NewShards(k, lookahead),
		rngs:   make([]*xrand.Stream, k),
		digs:   make([]uint64, k),
		counts: make([]int, k),
	}
	base := xrand.New(seed)
	for i := 0; i < k; i++ {
		m.digs[i] = 14695981039346656037 // FNV-64a offset basis
		m.rngs[i] = base.Derive(uint64(i))
	}
	return m
}

func (m *shardModel) fold(shard int, tag uint64) {
	at := uint64(m.shards.Shard(shard).Now())
	h := m.digs[shard]
	for _, v := range [2]uint64{at, tag} {
		for b := 0; b < 8; b++ {
			h ^= (v >> (8 * b)) & 0xff
			h *= 1099511628211
		}
	}
	m.digs[shard] = h
	m.counts[shard]++
}

// step is one event on a shard: fold it into the digest, then schedule a
// local follow-up and occasionally a cross-shard post.
func (m *shardModel) step(shard int, depth int, tag uint64) {
	m.fold(shard, tag)
	if depth <= 0 {
		return
	}
	rng := m.rngs[shard]
	localDelay := time.Duration(rng.Intn(5000)) * time.Microsecond
	m.shards.Shard(shard).Schedule(localDelay, func() {
		m.step(shard, depth-1, tag*31+1)
	})
	if rng.Intn(3) == 0 {
		dst := rng.Intn(m.shards.K())
		delay := m.shards.Lookahead() + time.Duration(rng.Intn(3000))*time.Microsecond
		m.shards.Post(shard, dst, delay, func() {
			m.step(dst, depth-1, tag*37+2)
		})
	}
}

func (m *shardModel) digest() string {
	h := fnv.New64a()
	for i, d := range m.digs {
		fmt.Fprintf(h, "%d:%016x:%d\n", i, d, m.counts[i])
	}
	return fmt.Sprintf("%016x events=%d", h.Sum64(), m.shards.Executed())
}

func runShardModel(k, workers int, seed uint64, horizon time.Duration) string {
	m := newShardModel(k, seed, time.Millisecond)
	m.shards.SetWorkers(workers)
	for i := 0; i < k; i++ {
		i := i
		m.shards.Shard(i).Schedule(time.Duration(i+1)*time.Millisecond, func() {
			m.step(i, 12, uint64(i)+1)
		})
	}
	if err := m.shards.Run(horizon); err != nil {
		panic(err)
	}
	return m.digest()
}

// TestShardsWorkerCountInvariance is the kernel-level equivalence
// oracle: the sharded simulation must produce byte-identical digests for
// workers=1 (sequential execution of the sharded model) and any larger
// worker count, per seed. Run under -race this also proves the window
// barriers fully order cross-shard effects.
func TestShardsWorkerCountInvariance(t *testing.T) {
	for _, k := range []int{2, 4, 7} {
		for seed := uint64(1); seed <= 5; seed++ {
			seq := runShardModel(k, 1, seed, time.Second)
			for _, workers := range []int{2, k, 2 * k} {
				got := runShardModel(k, workers, seed, time.Second)
				if got != seq {
					t.Fatalf("k=%d seed=%d workers=%d digest %s, sequential %s",
						k, seed, workers, got, seq)
				}
			}
		}
	}
}

// TestShardsMatchesSingleSimulatorWhenLocal pins that a model with no
// cross-shard traffic behaves exactly like K independent Simulators:
// sharding is pure composition when nothing crosses the boundary.
func TestShardsMatchesSingleSimulatorWhenLocal(t *testing.T) {
	const k = 3
	shards := des.NewShards(k, time.Millisecond)
	solo := make([]*des.Simulator, k)
	var shardFired, soloFired [k][]time.Duration
	for i := 0; i < k; i++ {
		solo[i] = des.New()
		for j := 0; j < 10; j++ {
			i, j := i, j
			delay := time.Duration(j*7+i) * time.Millisecond
			shards.Shard(i).Schedule(delay, func() {
				shardFired[i] = append(shardFired[i], shards.Shard(i).Now())
			})
			solo[i].Schedule(delay, func() {
				soloFired[i] = append(soloFired[i], solo[i].Now())
			})
		}
	}
	if err := shards.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := solo[i].Run(time.Second); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(shardFired[i]) != fmt.Sprint(soloFired[i]) {
			t.Fatalf("shard %d fired %v, solo %v", i, shardFired[i], soloFired[i])
		}
		if shards.Shard(i).Now() != time.Second {
			t.Fatalf("shard %d clock %v, want horizon", i, shards.Shard(i).Now())
		}
	}
}

// TestShardsPostOrdering pins the deterministic barrier merge: posts
// arriving at the same destination instant are delivered in (source
// shard, post order), regardless of which source posted "first" in wall
// time.
func TestShardsPostOrdering(t *testing.T) {
	shards := des.NewShards(3, time.Millisecond)
	shards.SetWorkers(3)
	var order []string
	// Shards 1 and 2 each post two events to shard 0, all arriving at
	// the same instant (2ms).
	for src := 1; src <= 2; src++ {
		src := src
		shards.Shard(src).Schedule(time.Millisecond, func() {
			for j := 0; j < 2; j++ {
				tag := fmt.Sprintf("s%d#%d", src, j)
				shards.Post(src, 0, time.Millisecond, func() {
					order = append(order, tag)
				})
			}
		})
	}
	if err := shards.Run(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	want := "[s1#0 s1#1 s2#0 s2#1]"
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("merge order %v, want %v", got, want)
	}
}

// TestShardsLookaheadContract pins the conservative guard: a cross-shard
// post below the lookahead must panic rather than silently violate the
// window invariant.
func TestShardsLookaheadContract(t *testing.T) {
	shards := des.NewShards(2, time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("sub-lookahead post did not panic")
		}
	}()
	shards.Post(0, 1, time.Microsecond, func() {})
}

// TestShardsRunAllDrains checks the no-horizon form terminates once all
// queues and outboxes drain, including chains that bounce across shards.
func TestShardsRunAllDrains(t *testing.T) {
	shards := des.NewShards(2, time.Millisecond)
	shards.SetWorkers(2)
	hops := 0
	var hop func(src, depth int)
	hop = func(src, depth int) {
		hops++
		if depth == 0 {
			return
		}
		shards.Post(src, 1-src, time.Millisecond, func() { hop(1-src, depth-1) })
	}
	shards.Shard(0).Schedule(time.Millisecond, func() { hop(0, 9) })
	if err := shards.RunAll(); err != nil {
		t.Fatal(err)
	}
	if hops != 10 {
		t.Fatalf("hops = %d, want 10", hops)
	}
	if shards.Pending() != 0 {
		t.Fatalf("pending = %d after RunAll", shards.Pending())
	}
}
