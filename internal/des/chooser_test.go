package des

import (
	"testing"
	"time"
)

// chooserFunc adapts a function to the Chooser interface.
type chooserFunc func(now time.Duration, k int) int

func (f chooserFunc) Choose(now time.Duration, k int) int { return f(now, k) }

// record schedules labelled no-op events and returns the firing order.
func runOrder(t *testing.T, chooser Chooser, batches [][]string) []string {
	t.Helper()
	sim := New()
	sim.SetChooser(chooser)
	var got []string
	for i, batch := range batches {
		at := time.Duration(i+1) * time.Second
		for _, name := range batch {
			name := name
			sim.ScheduleAt(at, func() { got = append(got, name) })
		}
	}
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestChooserZeroMatchesDefault(t *testing.T) {
	batches := [][]string{{"a", "b", "c"}, {"d"}, {"e", "f"}}
	def := runOrder(t, nil, batches)
	zero := runOrder(t, chooserFunc(func(time.Duration, int) int { return 0 }), batches)
	if len(def) != len(zero) {
		t.Fatalf("lengths differ: %v vs %v", def, zero)
	}
	for i := range def {
		if def[i] != zero[i] {
			t.Fatalf("always-0 chooser diverged from default at %d: %v vs %v", i, def, zero)
		}
	}
	want := []string{"a", "b", "c", "d", "e", "f"}
	for i := range want {
		if def[i] != want[i] {
			t.Fatalf("default order = %v, want %v", def, want)
		}
	}
}

func TestChooserLastReversesTies(t *testing.T) {
	last := chooserFunc(func(_ time.Duration, k int) int { return k - 1 })
	got := runOrder(t, last, [][]string{{"a", "b", "c"}, {"d", "e"}})
	want := []string{"c", "b", "a", "e", "d"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestChooserRequeuePreservesScheduleOrder checks that the events not
// chosen go back on the heap with their original tie-break order: picking
// index 1 out of {a,b,c} must leave {a,c} in that order.
func TestChooserRequeuePreservesScheduleOrder(t *testing.T) {
	first := true
	ch := chooserFunc(func(_ time.Duration, k int) int {
		if first {
			first = false
			return 1
		}
		return 0
	})
	got := runOrder(t, ch, [][]string{{"a", "b", "c"}})
	want := []string{"b", "a", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestChooserSkipsSingletons verifies the chooser is only consulted at real
// decision points (k > 1).
func TestChooserSkipsSingletons(t *testing.T) {
	calls := 0
	ch := chooserFunc(func(_ time.Duration, k int) int {
		calls++
		if k < 2 {
			t.Fatalf("chooser consulted with k=%d", k)
		}
		return 0
	})
	runOrder(t, ch, [][]string{{"a"}, {"b", "c"}, {"d"}})
	if calls != 1 {
		t.Fatalf("chooser called %d times, want 1", calls)
	}
}

// TestChooserCancelledTiesPruned verifies tombstoned events never count
// toward the batch arity.
func TestChooserCancelledTiesPruned(t *testing.T) {
	sim := New()
	var ks []int
	sim.SetChooser(chooserFunc(func(_ time.Duration, k int) int {
		ks = append(ks, k)
		return k - 1
	}))
	var got []string
	add := func(name string) EventID {
		return sim.ScheduleAt(time.Second, func() { got = append(got, name) })
	}
	add("a")
	id := add("b")
	add("c")
	sim.Cancel(id)
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(ks) != 1 || ks[0] != 2 {
		t.Fatalf("decision arities = %v, want [2]", ks)
	}
	want := []string{"c", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestChooserNewEventsAtSameInstant verifies that events scheduled by a
// firing callback for the current instant join subsequent decisions after
// the already-queued ties, matching default kernel semantics.
func TestChooserNewEventsAtSameInstant(t *testing.T) {
	sim := New()
	sim.SetChooser(chooserFunc(func(_ time.Duration, k int) int { return 0 }))
	var got []string
	sim.ScheduleAt(time.Second, func() {
		got = append(got, "a")
		sim.Schedule(0, func() { got = append(got, "spawned") })
	})
	sim.ScheduleAt(time.Second, func() { got = append(got, "b") })
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "spawned"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestChooserOutOfRangePanics(t *testing.T) {
	sim := New()
	sim.SetChooser(chooserFunc(func(_ time.Duration, k int) int { return k }))
	sim.ScheduleAt(time.Second, func() {})
	sim.ScheduleAt(time.Second, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range choice")
		}
	}()
	sim.RunAll() //nolint:errcheck
}
