// Package des provides a deterministic discrete-event simulation kernel.
//
// The kernel keeps a virtual clock and a priority queue of scheduled events.
// Events scheduled for the same instant fire in the order they were
// scheduled, which makes every simulation run fully deterministic for a
// given seed and schedule. All checkpointing experiments in this repository
// run on top of this kernel so that virtual time (900-second checkpoint
// intervals, 2-second checkpoint transfers) is cheap to simulate.
package des

import (
	"container/heap"
	"errors"
	"time"
)

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Stop before the horizon was reached.
var ErrStopped = errors.New("des: simulation stopped")

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

// event is a single scheduled callback.
type event struct {
	at    time.Duration
	seq   uint64 // tie-breaker: schedule order
	id    EventID
	fn    func()
	index int // heap index, -1 when popped/cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Simulator is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; all event callbacks run on the goroutine that calls
// Run or Step.
type Simulator struct {
	now     time.Duration
	seq     uint64
	nextID  EventID
	heap    eventHeap
	byID    map[EventID]*event
	stopped bool

	// Executed counts events that have fired, for diagnostics.
	executed uint64
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{byID: make(map[EventID]*event)}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Executed reports how many events have fired so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending reports how many events are currently scheduled.
func (s *Simulator) Pending() int { return len(s.heap) }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero (fire at the current instant, after already-queued events for this
// instant). It returns an id usable with Cancel.
func (s *Simulator) Schedule(delay time.Duration, fn func()) EventID {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at the given absolute virtual time. Times in the past
// are clamped to the current instant.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) EventID {
	if at < s.now {
		at = s.now
	}
	s.nextID++
	s.seq++
	ev := &event{at: at, seq: s.seq, id: s.nextID, fn: fn}
	heap.Push(&s.heap, ev)
	s.byID[ev.id] = ev
	return ev.id
}

// Cancel removes a scheduled event. It reports whether the event was still
// pending (false when it already fired, was cancelled, or never existed).
func (s *Simulator) Cancel(id EventID) bool {
	ev, ok := s.byID[id]
	if !ok {
		return false
	}
	delete(s.byID, id)
	if ev.index >= 0 {
		heap.Remove(&s.heap, ev.index)
	}
	return true
}

// Stop makes the currently running Run call return ErrStopped after the
// current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports whether an event fired.
func (s *Simulator) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	ev := heap.Pop(&s.heap).(*event)
	delete(s.byID, ev.id)
	s.now = ev.at
	s.executed++
	ev.fn()
	return true
}

// Run fires events in timestamp order until the horizon is passed, the
// event queue drains, or Stop is called. The clock never advances beyond
// horizon: an event scheduled after the horizon stays queued and the clock
// is set to the horizon on return. Run returns ErrStopped only for explicit
// stops; draining the queue or reaching the horizon returns nil.
func (s *Simulator) Run(horizon time.Duration) error {
	s.stopped = false
	for len(s.heap) > 0 {
		if s.stopped {
			return ErrStopped
		}
		next := s.heap[0]
		if next.at > horizon {
			s.now = horizon
			return nil
		}
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}

// RunAll fires events until the queue drains or Stop is called, with no
// horizon. Use only with workloads that terminate on their own.
func (s *Simulator) RunAll() error {
	s.stopped = false
	for len(s.heap) > 0 {
		if s.stopped {
			return ErrStopped
		}
		s.Step()
	}
	return nil
}

// Ticker repeatedly schedules fn every period until Stop is called on it.
// The first firing happens one period from the moment NewTicker is called
// (plus the optional phase offset).
type Ticker struct {
	sim     *Simulator
	period  time.Duration
	fn      func()
	id      EventID
	pending bool
	stop    bool
}

// NewTicker creates and starts a ticker. phase delays the first firing by
// phase beyond one full period when non-zero; pass 0 for a plain ticker.
func (s *Simulator) NewTicker(period, phase time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("des: ticker period must be positive")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.id = s.Schedule(period+phase, t.tick)
	t.pending = true
	return t
}

func (t *Ticker) tick() {
	if t.stop {
		return
	}
	t.pending = false
	t.fn()
	if t.stop {
		return
	}
	if !t.pending {
		// fn may have called Reschedule already; avoid double-scheduling.
		t.id = t.sim.Schedule(t.period, t.tick)
		t.pending = true
	}
}

// Stop prevents any further firings.
func (t *Ticker) Stop() {
	t.stop = true
	if t.pending {
		t.sim.Cancel(t.id)
		t.pending = false
	}
}

// Reschedule moves the next firing to one period from now, dropping the
// currently pending firing. It is used by checkpoint schedulers that reset
// their timer when a checkpoint is taken early; it is safe to call from
// inside the ticker's own callback.
func (t *Ticker) Reschedule() {
	if t.stop {
		return
	}
	if t.pending {
		t.sim.Cancel(t.id)
	}
	t.id = t.sim.Schedule(t.period, t.tick)
	t.pending = true
}
