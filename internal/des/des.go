// Package des provides a deterministic discrete-event simulation kernel.
//
// The kernel keeps a virtual clock and a priority queue of scheduled events.
// Events scheduled for the same instant fire in the order they were
// scheduled, which makes every simulation run fully deterministic for a
// given seed and schedule. All checkpointing experiments in this repository
// run on top of this kernel so that virtual time (900-second checkpoint
// intervals, 2-second checkpoint transfers) is cheap to simulate.
//
// The hot path is allocation-free: the priority queue stores event values
// (not pointers) in a slice-backed quaternary-comparison binary heap, and
// event identity is a (slot, generation) pair drawn from a free list, so
// Schedule/Step never touch a map and never allocate once the backing
// slices reach steady size. Cancel is lazy: it flips the slot's pending bit
// and leaves a tombstone in the heap, which is discarded when it surfaces
// at the root (or swept out wholesale when tombstones outnumber live
// events), instead of paying an O(log n) heap removal per cancellation.
package des

import (
	"errors"
	"time"
)

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Stop before the horizon was reached.
var ErrStopped = errors.New("des: simulation stopped")

// EventID identifies a scheduled event so it can be cancelled. It packs the
// event's slot index (high 32 bits) and the slot's generation (low 32
// bits); generations start at 1, so a valid EventID is never zero.
type EventID uint64

func makeEventID(slot, gen uint32) EventID {
	return EventID(uint64(slot)<<32 | uint64(gen))
}

func (id EventID) split() (slot, gen uint32) {
	return uint32(id >> 32), uint32(id)
}

// event is a single scheduled callback, stored by value in the heap.
type event struct {
	at   time.Duration
	seq  uint64 // tie-breaker: schedule order
	fn   func()
	slot uint32
	gen  uint32
}

// slot carries the out-of-heap state for one in-flight event. pending flips
// to false when the event is cancelled (the heap entry becomes a tombstone)
// or fires; gen increments each time the slot is recycled, invalidating any
// stale EventID that still points at it.
type slot struct {
	gen     uint32
	pending bool
}

// compactMinTombstones is the floor below which lazy cancellation never
// bothers sweeping the heap: small queues tolerate a handful of tombstones
// and the sweep would cost more than it saves.
const compactMinTombstones = 64

// Chooser selects which of k same-timestamp events fires next. It is the
// model checker's entry point into the kernel: with no chooser installed,
// ties break in schedule order (choice 0); with one installed, every
// instant at which k > 1 events are ready becomes an explicit decision
// point. Choose must return a value in [0, k). The events are presented in
// schedule order, so returning 0 reproduces the default behaviour exactly.
type Chooser interface {
	Choose(now time.Duration, k int) int
}

// Simulator is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; all event callbacks run on the goroutine that calls
// Run or Step.
type Simulator struct {
	now     time.Duration
	seq     uint64
	heap    []event
	slots   []slot
	free    []uint32 // recycled slot indices
	dead    int      // cancelled events still sitting in heap
	stopped bool

	chooser Chooser
	scratch []event // same-timestamp batch buffer for chooseStep

	// Executed counts events that have fired, for diagnostics.
	executed uint64
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Executed reports how many events have fired so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending reports how many live (not cancelled) events are currently
// scheduled.
func (s *Simulator) Pending() int { return len(s.heap) - s.dead }

// Tombstones reports how many cancelled events are still occupying heap
// space awaiting lazy removal. It exists for diagnostics and leak tests;
// the count is kept bounded by Pending() via periodic compaction.
func (s *Simulator) Tombstones() int { return s.dead }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero (fire at the current instant, after already-queued events for this
// instant). It returns an id usable with Cancel.
func (s *Simulator) Schedule(delay time.Duration, fn func()) EventID {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at the given absolute virtual time. Times in the past
// are clamped to the current instant.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) EventID {
	if at < s.now {
		at = s.now
	}
	s.seq++
	var idx uint32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, slot{gen: 1})
		idx = uint32(len(s.slots) - 1)
		if cap(s.free) < cap(s.slots) {
			// Keep cap(free) >= len(slots) so freeSlot never reallocates:
			// cancellation and compaction stay allocation-free, paying the
			// growth here on the (already allocating) schedule path.
			free := make([]uint32, len(s.free), cap(s.slots))
			copy(free, s.free)
			s.free = free
		}
	}
	sl := &s.slots[idx]
	sl.pending = true
	s.push(event{at: at, seq: s.seq, fn: fn, slot: idx, gen: sl.gen})
	return makeEventID(idx, sl.gen)
}

// Cancel removes a scheduled event. It reports whether the event was still
// pending (false when it already fired, was cancelled, or never existed).
// Cancellation is O(1): the heap entry is tombstoned in place and reclaimed
// lazily.
func (s *Simulator) Cancel(id EventID) bool {
	idx, gen := id.split()
	if int(idx) >= len(s.slots) {
		return false
	}
	sl := &s.slots[idx]
	if sl.gen != gen || !sl.pending {
		return false
	}
	sl.pending = false
	s.dead++
	if s.dead >= compactMinTombstones && s.dead > len(s.heap)/2 {
		s.compact()
	}
	return true
}

// freeSlot recycles a slot whose heap entry has been removed, invalidating
// outstanding EventIDs for it.
func (s *Simulator) freeSlot(idx uint32) {
	s.slots[idx].gen++
	s.free = append(s.free, idx)
}

// live reports whether a heap entry still refers to a pending event.
func (s *Simulator) live(ev *event) bool {
	sl := &s.slots[ev.slot]
	return sl.pending && sl.gen == ev.gen
}

// pruneRoot pops tombstones off the heap root so that, on return, heap[0]
// (if any) is a live event. Keeping the root live lets Run's horizon check
// peek at heap[0].at without firing anything.
func (s *Simulator) pruneRoot() {
	for len(s.heap) > 0 {
		ev := s.heap[0]
		if s.live(&ev) {
			return
		}
		s.popRoot()
		s.dead--
		s.freeSlot(ev.slot)
	}
}

// compact sweeps every tombstone out of the heap in one O(n) pass and
// re-heapifies. Amortised over the cancellations that triggered it this is
// O(1) per Cancel, and it bounds heap memory at ~2x the live event count
// even under pathological Reschedule storms.
func (s *Simulator) compact() {
	keep := s.heap[:0]
	for i := range s.heap {
		ev := s.heap[i]
		if s.live(&ev) {
			keep = append(keep, ev)
		} else {
			s.freeSlot(ev.slot)
		}
	}
	for i := len(keep); i < len(s.heap); i++ {
		s.heap[i] = event{} // release dropped fn closures
	}
	s.heap = keep
	s.dead = 0
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

// Stop makes the currently running Run call return ErrStopped after the
// current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// NextEventAt peeks at the earliest pending event's timestamp without
// firing it. The second result is false when no live event is queued.
func (s *Simulator) NextEventAt() (time.Duration, bool) {
	s.pruneRoot()
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].at, true
}

// SetChooser installs (or, with nil, removes) a tie-break strategy. With a
// chooser installed, Step collects every live event sharing the earliest
// timestamp and asks the chooser which fires first; the rest are requeued
// with their original schedule order intact, so a chooser that always
// returns 0 is byte-identical to the default kernel.
func (s *Simulator) SetChooser(c Chooser) { s.chooser = c }

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports whether an event fired.
func (s *Simulator) Step() bool {
	if s.chooser != nil {
		return s.chooseStep()
	}
	s.pruneRoot()
	if len(s.heap) == 0 {
		return false
	}
	ev := s.heap[0]
	s.popRoot()
	s.slots[ev.slot].pending = false
	s.freeSlot(ev.slot)
	s.now = ev.at
	s.executed++
	ev.fn()
	return true
}

// chooseStep is Step with an installed chooser: the whole batch of live
// events at the earliest timestamp is popped into a scratch buffer (they
// arrive in schedule order, tombstones pruned along the way), the chooser
// picks one, and the others go back on the heap with their original seq so
// later ties still break the same way. No user code runs while events sit
// in the scratch buffer, so nothing can Cancel them mid-decision.
func (s *Simulator) chooseStep() bool {
	s.pruneRoot()
	if len(s.heap) == 0 {
		return false
	}
	at := s.heap[0].at
	s.scratch = s.scratch[:0]
	for len(s.heap) > 0 && s.heap[0].at == at {
		ev := s.heap[0]
		s.popRoot()
		s.scratch = append(s.scratch, ev)
		s.pruneRoot()
	}
	choice := 0
	if k := len(s.scratch); k > 1 {
		choice = s.chooser.Choose(at, k)
		if choice < 0 || choice >= k {
			panic("des: chooser returned choice out of range")
		}
	}
	ev := s.scratch[choice]
	for i, other := range s.scratch {
		if i != choice {
			s.push(other)
		}
		s.scratch[i] = event{} // release fn closures
	}
	s.slots[ev.slot].pending = false
	s.freeSlot(ev.slot)
	s.now = at
	s.executed++
	ev.fn()
	return true
}

// Run fires events in timestamp order until the horizon is passed, the
// event queue drains, or Stop is called. The clock never advances beyond
// horizon: an event scheduled after the horizon stays queued and the clock
// is set to the horizon on return. Run returns ErrStopped only for explicit
// stops; draining the queue or reaching the horizon returns nil.
func (s *Simulator) Run(horizon time.Duration) error {
	s.stopped = false
	for {
		s.pruneRoot()
		if len(s.heap) == 0 {
			break
		}
		if s.stopped {
			return ErrStopped
		}
		if s.heap[0].at > horizon {
			s.now = horizon
			return nil
		}
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}

// RunAll fires events until the queue drains or Stop is called, with no
// horizon. Use only with workloads that terminate on their own.
func (s *Simulator) RunAll() error {
	s.stopped = false
	for {
		s.pruneRoot()
		if len(s.heap) == 0 {
			return nil
		}
		if s.stopped {
			return ErrStopped
		}
		s.Step()
	}
}

// heap ordering: earliest timestamp first, schedule order breaking ties.
// The heap is hand-rolled over []event rather than container/heap to keep
// the per-event path free of interface boxing and pointer indirection.

func (s *Simulator) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Simulator) push(ev event) {
	s.heap = append(s.heap, ev)
	s.siftUp(len(s.heap) - 1)
}

// popRoot removes heap[0]; callers must copy it out first.
func (s *Simulator) popRoot() {
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap[n] = event{}
	s.heap = s.heap[:n]
	if n > 1 {
		s.siftDown(0)
	}
}

func (s *Simulator) siftUp(i int) {
	h := s.heap
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(&ev, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

func (s *Simulator) siftDown(i int) {
	h := s.heap
	n := len(h)
	ev := h[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && s.less(&h[r], &h[child]) {
			child = r
		}
		if !s.less(&h[child], &ev) {
			break
		}
		h[i] = h[child]
		i = child
	}
	h[i] = ev
}

// Ticker repeatedly schedules fn every period until Stop is called on it.
// The first firing happens one period from the moment NewTicker is called
// (plus the optional phase offset).
type Ticker struct {
	sim     *Simulator
	period  time.Duration
	fn      func()
	tickFn  func() // t.tick bound once, so rescheduling never allocates
	id      EventID
	pending bool
	stop    bool
}

// NewTicker creates and starts a ticker. phase delays the first firing by
// phase beyond one full period when non-zero; pass 0 for a plain ticker.
func (s *Simulator) NewTicker(period, phase time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("des: ticker period must be positive")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.tickFn = t.tick
	t.id = s.Schedule(period+phase, t.tickFn)
	t.pending = true
	return t
}

func (t *Ticker) tick() {
	if t.stop {
		return
	}
	t.pending = false
	t.fn()
	if t.stop {
		return
	}
	if !t.pending {
		// fn may have called Reschedule already; avoid double-scheduling.
		t.id = t.sim.Schedule(t.period, t.tickFn)
		t.pending = true
	}
}

// Stop prevents any further firings.
func (t *Ticker) Stop() {
	t.stop = true
	if t.pending {
		t.sim.Cancel(t.id)
		t.pending = false
	}
}

// Reschedule moves the next firing to one period from now, dropping the
// currently pending firing. It is used by checkpoint schedulers that reset
// their timer when a checkpoint is taken early; it is safe to call from
// inside the ticker's own callback.
func (t *Ticker) Reschedule() {
	if t.stop {
		return
	}
	if t.pending {
		t.sim.Cancel(t.id)
	}
	t.id = t.sim.Schedule(t.period, t.tickFn)
	t.pending = true
}
