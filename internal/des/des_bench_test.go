package des_test

import (
	"testing"
	"time"

	"mutablecp/internal/des"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	sim := des.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			sim.RunAll() //nolint:errcheck
		}
	}
	sim.RunAll() //nolint:errcheck
}

func BenchmarkEventChurn(b *testing.B) {
	sim := des.New()
	var next func()
	count := 0
	next = func() {
		count++
		if count < b.N {
			sim.Schedule(time.Microsecond, next)
		}
	}
	sim.Schedule(time.Microsecond, next)
	b.ResetTimer()
	sim.RunAll() //nolint:errcheck
}

func BenchmarkCancel(b *testing.B) {
	sim := des.New()
	ids := make([]des.EventID, b.N)
	for i := range ids {
		ids[i] = sim.Schedule(time.Second, func() {})
	}
	b.ResetTimer()
	for _, id := range ids {
		sim.Cancel(id)
	}
}
