package des_test

// Kernel microbenchmarks. Every benchmark reports allocations and an
// events/sec throughput metric so cmd/mcpbench can track the per-event
// cost of the hot path (schedule + heap push + pop + fire) over time.

import (
	"testing"
	"time"

	"mutablecp/internal/des"
)

// reportEventRate attaches an events/sec metric derived from the number of
// events the benchmark actually fired.
func reportEventRate(b *testing.B, fired uint64) {
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(fired)/secs, "events/sec")
	}
}

// BenchmarkDESScheduleAndRun interleaves scheduling with batched draining:
// the mixed workload every simulation cluster generates.
func BenchmarkDESScheduleAndRun(b *testing.B) {
	sim := des.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			sim.RunAll() //nolint:errcheck
		}
	}
	sim.RunAll() //nolint:errcheck
	reportEventRate(b, sim.Executed())
}

// BenchmarkDESEventChurn measures the self-perpetuating single-event chain:
// pure Step overhead with a one-element heap.
func BenchmarkDESEventChurn(b *testing.B) {
	sim := des.New()
	var next func()
	count := 0
	next = func() {
		count++
		if count < b.N {
			sim.Schedule(time.Microsecond, next)
		}
	}
	sim.Schedule(time.Microsecond, next)
	b.ReportAllocs()
	b.ResetTimer()
	sim.RunAll() //nolint:errcheck
	reportEventRate(b, sim.Executed())
}

// BenchmarkDESCancel schedules b.N events and cancels them all: the lazy
// tombstone path plus its amortised compaction sweeps.
func BenchmarkDESCancel(b *testing.B) {
	sim := des.New()
	ids := make([]des.EventID, b.N)
	for i := range ids {
		ids[i] = sim.Schedule(time.Second, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for _, id := range ids {
		sim.Cancel(id)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "cancels/sec")
	}
}

// BenchmarkDESRescheduleStorm hammers Ticker.Reschedule the way checkpoint
// schedulers do when every message resets the interval timer: each
// iteration is a cancel plus a re-schedule against a populated heap.
func BenchmarkDESRescheduleStorm(b *testing.B) {
	sim := des.New()
	tk := sim.NewTicker(time.Hour, 0, func() {})
	// Background events so the heap is non-trivial.
	for i := 0; i < 256; i++ {
		sim.Schedule(time.Duration(i+1)*time.Hour, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Reschedule()
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "reschedules/sec")
	}
	tk.Stop()
}
