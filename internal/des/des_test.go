package des_test

import (
	"testing"
	"time"

	"mutablecp/internal/des"
)

func TestScheduleOrdering(t *testing.T) {
	sim := des.New()
	var order []int
	sim.Schedule(3*time.Second, func() { order = append(order, 3) })
	sim.Schedule(1*time.Second, func() { order = append(order, 1) })
	sim.Schedule(2*time.Second, func() { order = append(order, 2) })
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if sim.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", sim.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	sim := des.New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		sim.Schedule(time.Second, func() { order = append(order, i) })
	}
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if order[i] != i {
			t.Fatalf("same-instant events fired out of schedule order at %d: %v", i, order[:i+1])
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	sim := des.New()
	fired := false
	sim.Schedule(-5*time.Second, func() { fired = true })
	sim.Step()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if sim.Now() != 0 {
		t.Fatalf("clock moved backwards: %v", sim.Now())
	}
}

func TestScheduleAtPastClamps(t *testing.T) {
	sim := des.New()
	sim.Schedule(10*time.Second, func() {})
	sim.Step()
	var at time.Duration
	sim.ScheduleAt(time.Second, func() { at = sim.Now() })
	sim.Step()
	if at != 10*time.Second {
		t.Fatalf("past event fired at %v, want clamp to 10s", at)
	}
}

func TestCancel(t *testing.T) {
	sim := des.New()
	fired := false
	id := sim.Schedule(time.Second, func() { fired = true })
	if !sim.Cancel(id) {
		t.Fatal("cancel reported failure for pending event")
	}
	if sim.Cancel(id) {
		t.Fatal("double cancel reported success")
	}
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	sim := des.New()
	id := sim.Schedule(time.Second, func() {})
	sim.Step()
	if sim.Cancel(id) {
		t.Fatal("cancel of fired event reported success")
	}
}

func TestRunHorizon(t *testing.T) {
	sim := des.New()
	fired := 0
	sim.Schedule(1*time.Second, func() { fired++ })
	sim.Schedule(10*time.Second, func() { fired++ })
	if err := sim.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d events before horizon, want 1", fired)
	}
	if sim.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want horizon 5s", sim.Now())
	}
	if sim.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", sim.Pending())
	}
	// Resuming past the horizon fires the rest.
	if err := sim.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d after second run, want 2", fired)
	}
}

func TestRunEmptyAdvancesToHorizon(t *testing.T) {
	sim := des.New()
	if err := sim.Run(7 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sim.Now() != 7*time.Second {
		t.Fatalf("clock = %v, want 7s", sim.Now())
	}
}

func TestStop(t *testing.T) {
	sim := des.New()
	count := 0
	var self func()
	self = func() {
		count++
		if count == 3 {
			sim.Stop()
		}
		sim.Schedule(time.Second, self)
	}
	sim.Schedule(time.Second, self)
	err := sim.RunAll()
	if err != des.ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestEventScheduledDuringEvent(t *testing.T) {
	sim := des.New()
	var order []string
	sim.Schedule(time.Second, func() {
		order = append(order, "outer")
		sim.Schedule(0, func() { order = append(order, "inner-now") })
		sim.Schedule(time.Second, func() { order = append(order, "inner-later") })
	})
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []string{"outer", "inner-now", "inner-later"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	sim := des.New()
	var times []time.Duration
	tk := sim.NewTicker(time.Second, 0, func() { times = append(times, sim.Now()) })
	sim.Run(5500 * time.Millisecond)
	tk.Stop()
	if len(times) != 5 {
		t.Fatalf("fired %d times, want 5 (%v)", len(times), times)
	}
	for i, at := range times {
		want := time.Duration(i+1) * time.Second
		if at != want {
			t.Fatalf("firing %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerPhase(t *testing.T) {
	sim := des.New()
	var first time.Duration = -1
	tk := sim.NewTicker(time.Second, 300*time.Millisecond, func() {
		if first < 0 {
			first = sim.Now()
		}
	})
	defer tk.Stop()
	sim.Run(2 * time.Second)
	if first != 1300*time.Millisecond {
		t.Fatalf("first firing at %v, want 1.3s", first)
	}
}

func TestTickerRescheduleFromCallback(t *testing.T) {
	sim := des.New()
	var times []time.Duration
	var tk *des.Ticker
	tk = sim.NewTicker(time.Second, 0, func() {
		times = append(times, sim.Now())
		// Rescheduling from inside the callback must not double-schedule.
		tk.Reschedule()
	})
	sim.Run(4500 * time.Millisecond)
	tk.Stop()
	if len(times) != 4 {
		t.Fatalf("fired %d times, want 4: %v", len(times), times)
	}
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 4 {
		t.Fatalf("stopped ticker kept firing: %v", times)
	}
}

func TestTickerRescheduleDelaysNextFiring(t *testing.T) {
	sim := des.New()
	var times []time.Duration
	tk := sim.NewTicker(10*time.Second, 0, func() { times = append(times, sim.Now()) })
	// At t=5s an "early checkpoint" resets the timer: next firing at 15s.
	sim.Schedule(5*time.Second, tk.Reschedule)
	sim.Run(16 * time.Second)
	tk.Stop()
	if len(times) != 1 || times[0] != 15*time.Second {
		t.Fatalf("firings = %v, want [15s]", times)
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	sim := des.New()
	count := 0
	var tk *des.Ticker
	tk = sim.NewTicker(time.Second, 0, func() {
		count++
		tk.Stop()
	})
	sim.Run(10 * time.Second)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
}

func TestExecutedCount(t *testing.T) {
	sim := des.New()
	for i := 0; i < 10; i++ {
		sim.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	sim.RunAll()
	if sim.Executed() != 10 {
		t.Fatalf("executed = %d, want 10", sim.Executed())
	}
}

// TestRescheduleStormBoundedTombstones proves lazy cancellation cannot leak:
// a million Ticker.Reschedule calls (each a cancel + re-schedule at the same
// virtual instant, the worst case for tombstone accumulation) must leave the
// pending count exact and the tombstone backlog bounded by the live event
// count, not by the number of cancellations.
func TestRescheduleStormBoundedTombstones(t *testing.T) {
	sim := des.New()
	fired := 0
	tk := sim.NewTicker(time.Hour, 0, func() { fired++ })
	// A plausible population of live background events.
	const background = 100
	for i := 0; i < background; i++ {
		sim.Schedule(time.Duration(i+2)*time.Hour, func() {})
	}
	const storms = 1_000_000
	for i := 0; i < storms; i++ {
		tk.Reschedule()
		if p := sim.Pending(); p != background+1 {
			t.Fatalf("after %d reschedules Pending() = %d, want %d", i+1, p, background+1)
		}
	}
	// Compaction keeps cancelled entries bounded by the live population,
	// so memory cannot grow with the number of reschedules.
	if ts := sim.Tombstones(); ts > background+1 {
		t.Fatalf("tombstones = %d after %d reschedules, want <= %d", ts, storms, background+1)
	}
	if err := sim.Run(90 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("ticker fired %d times after storm, want exactly 1", fired)
	}
}

// TestCancelStaleIDAfterSlotReuse exercises the generation scheme: an
// EventID held across its event's firing must not cancel an unrelated
// event that recycled the same slot.
func TestCancelStaleIDAfterSlotReuse(t *testing.T) {
	sim := des.New()
	stale := sim.Schedule(time.Second, func() {})
	sim.Step()
	fired := false
	fresh := sim.Schedule(time.Second, func() { fired = true })
	if sim.Cancel(stale) {
		t.Fatal("stale id cancelled a recycled slot")
	}
	if err := sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event on recycled slot did not fire")
	}
	if sim.Cancel(fresh) {
		t.Fatal("cancel after firing reported success")
	}
}

func TestTickerPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive ticker period")
		}
	}()
	des.New().NewTicker(0, 0, func() {})
}
