package checkpoint_test

import (
	"errors"
	"testing"
	"time"

	"mutablecp/internal/checkpoint"
	"mutablecp/internal/protocol"
)

func state(proc, n int) protocol.State {
	return protocol.State{
		Proc:     proc,
		SentTo:   make([]uint64, n),
		RecvFrom: make([]uint64, n),
	}
}

func TestStableStoreInitialPermanent(t *testing.T) {
	st := checkpoint.NewStableStore(3, 4)
	perm := st.Permanent()
	if perm.State.Proc != 3 || perm.State.CSN != 0 || perm.Status != checkpoint.StatusPermanent {
		t.Fatalf("initial permanent = %+v", perm)
	}
	if len(st.History()) != 1 {
		t.Fatalf("history = %d, want 1", len(st.History()))
	}
}

func TestTentativeLifecycle(t *testing.T) {
	st := checkpoint.NewStableStore(0, 2)
	trig := protocol.Trigger{Pid: 1, Inum: 1}
	s := state(0, 2)
	s.CSN = 1
	if err := st.SaveTentative(s, trig, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Tentative(trig); !ok {
		t.Fatal("tentative not found")
	}
	if st.TentativeCount() != 1 {
		t.Fatalf("count = %d", st.TentativeCount())
	}
	if err := st.MakePermanent(trig, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if st.TentativeCount() != 0 {
		t.Fatal("tentative survived commit")
	}
	perm := st.Permanent()
	if perm.State.CSN != 1 || perm.SavedAt != 2*time.Second {
		t.Fatalf("permanent = %+v", perm)
	}
	if len(st.History()) != 2 {
		t.Fatalf("history = %d, want 2", len(st.History()))
	}
}

func TestDuplicateTentativeSameTrigger(t *testing.T) {
	st := checkpoint.NewStableStore(0, 2)
	trig := protocol.Trigger{Pid: 1, Inum: 1}
	if err := st.SaveTentative(state(0, 2), trig, 0); err != nil {
		t.Fatal(err)
	}
	err := st.SaveTentative(state(0, 2), trig, 0)
	if !errors.Is(err, checkpoint.ErrTentativePending) {
		t.Fatalf("err = %v, want ErrTentativePending", err)
	}
}

func TestConcurrentTentativesDifferentTriggers(t *testing.T) {
	st := checkpoint.NewStableStore(0, 2)
	t1 := protocol.Trigger{Pid: 1, Inum: 1}
	t2 := protocol.Trigger{Pid: 2, Inum: 1}
	if err := st.SaveTentative(state(0, 2), t1, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveTentative(state(0, 2), t2, 0); err != nil {
		t.Fatalf("second trigger rejected: %v", err)
	}
	if st.TentativeCount() != 2 {
		t.Fatalf("count = %d, want 2", st.TentativeCount())
	}
	if err := st.DropTentative(t1); err != nil {
		t.Fatal(err)
	}
	if err := st.MakePermanent(t2, 0); err != nil {
		t.Fatal(err)
	}
	if st.TentativeCount() != 0 {
		t.Fatal("leftover tentatives")
	}
}

func TestMakePermanentWithoutTentative(t *testing.T) {
	st := checkpoint.NewStableStore(0, 2)
	err := st.MakePermanent(protocol.Trigger{Pid: 1, Inum: 1}, 0)
	if !errors.Is(err, checkpoint.ErrNoTentative) {
		t.Fatalf("err = %v, want ErrNoTentative", err)
	}
	if err := st.DropTentative(protocol.Trigger{Pid: 1, Inum: 1}); !errors.Is(err, checkpoint.ErrNoTentative) {
		t.Fatalf("drop err = %v, want ErrNoTentative", err)
	}
}

func TestTentativeStateIsDeepCopied(t *testing.T) {
	st := checkpoint.NewStableStore(0, 2)
	s := state(0, 2)
	trig := protocol.Trigger{Pid: 1, Inum: 1}
	if err := st.SaveTentative(s, trig, 0); err != nil {
		t.Fatal(err)
	}
	s.SentTo[1] = 99 // mutate the caller's slice after save
	rec, _ := st.Tentative(trig)
	if rec.State.SentTo[1] != 0 {
		t.Fatal("store aliased the caller's state")
	}
}

func TestGC(t *testing.T) {
	st := checkpoint.NewStableStore(0, 2)
	for i := 1; i <= 5; i++ {
		trig := protocol.Trigger{Pid: 0, Inum: i}
		s := state(0, 2)
		s.CSN = i
		if err := st.SaveTentative(s, trig, 0); err != nil {
			t.Fatal(err)
		}
		if err := st.MakePermanent(trig, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.GC(2); got != 4 { // initial + 5 = 6 permanents, keep 2
		t.Fatalf("GC dropped %d, want 4", got)
	}
	h := st.History()
	if len(h) != 2 || h[1].State.CSN != 5 {
		t.Fatalf("history after GC = %+v", h)
	}
	if st.GC(0) != 1 { // clamp keep to 1
		t.Fatal("GC keep<1 not clamped")
	}
	if st.Permanent().State.CSN != 5 {
		t.Fatal("GC dropped the newest permanent")
	}
}

// TestDiscardRuleOnCommit is the regression test for the paper's discard
// rule: with a retention bound set, committing a new permanent checkpoint
// garbage-collects the one it supersedes — the store must not accumulate
// dead permanents over a long run.
func TestDiscardRuleOnCommit(t *testing.T) {
	st := checkpoint.NewStableStore(0, 2)
	st.SetRetain(1)
	if st.Retain() != 1 {
		t.Fatalf("retain = %d, want 1", st.Retain())
	}
	for i := 1; i <= 5; i++ {
		trig := protocol.Trigger{Pid: 0, Inum: i}
		s := state(0, 2)
		s.CSN = i
		if err := st.SaveTentative(s, trig, 0); err != nil {
			t.Fatal(err)
		}
		if err := st.MakePermanent(trig, 0); err != nil {
			t.Fatal(err)
		}
		if got := len(st.History()); got != 1 {
			t.Fatalf("after commit %d: history = %d, want 1 (superseded permanent not discarded)", i, got)
		}
		if st.Permanent().State.CSN != i {
			t.Fatalf("after commit %d: newest permanent has CSN %d", i, st.Permanent().State.CSN)
		}
	}
	// Retention must never discard pending tentatives.
	trig := protocol.Trigger{Pid: 1, Inum: 1}
	if err := st.SaveTentative(state(0, 2), trig, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.MakePermanent(protocol.Trigger{Pid: 1, Inum: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if st.TentativeCount() != 0 || len(st.History()) != 1 {
		t.Fatalf("tentatives = %d history = %d", st.TentativeCount(), len(st.History()))
	}
}

func TestRestoreStableStore(t *testing.T) {
	s1 := state(2, 3)
	s1.CSN = 4
	perm := []checkpoint.Record{{State: s1, Trigger: protocol.NoTrigger, Status: checkpoint.StatusPermanent}}
	tent := []checkpoint.Record{{
		State:   state(2, 3),
		Trigger: protocol.Trigger{Pid: 0, Inum: 5},
		Status:  checkpoint.StatusTentative,
		SavedAt: time.Second,
	}}
	st, err := checkpoint.RestoreStableStore(2, perm, tent)
	if err != nil {
		t.Fatal(err)
	}
	if st.Permanent().State.CSN != 4 || st.TentativeCount() != 1 {
		t.Fatalf("restored store: %+v", st)
	}
	if err := st.MakePermanent(protocol.Trigger{Pid: 0, Inum: 5}, 2*time.Second); err != nil {
		t.Fatalf("restored tentative not committable: %v", err)
	}

	if _, err := checkpoint.RestoreStableStore(0, nil, nil); err == nil {
		t.Fatal("restore with empty permanent history accepted")
	}
	bad := []checkpoint.Record{{State: s1, Status: checkpoint.StatusTentative}}
	if _, err := checkpoint.RestoreStableStore(0, bad, nil); err == nil {
		t.Fatal("tentative record accepted in permanent history")
	}
	if _, err := checkpoint.RestoreStableStore(2, perm, append(tent, tent[0])); err == nil {
		t.Fatal("duplicate tentative accepted")
	}
}

func TestMutableStoreLifecycle(t *testing.T) {
	ms := checkpoint.NewMutableStore(1)
	t1 := protocol.Trigger{Pid: 2, Inum: 3}
	t2 := protocol.Trigger{Pid: 4, Inum: 1}
	if err := ms.Save(state(1, 2), t1, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := ms.Save(state(1, 2), t2, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if ms.Len() != 2 {
		t.Fatalf("len = %d", ms.Len())
	}
	if _, ok := ms.Get(t1); !ok {
		t.Fatal("Get missed stored record")
	}
	rec, err := ms.Take(t1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != checkpoint.StatusMutable || rec.SavedAt != time.Second {
		t.Fatalf("record = %+v", rec)
	}
	if _, err := ms.Take(t1); !errors.Is(err, checkpoint.ErrNoMutable) {
		t.Fatalf("double take err = %v", err)
	}
	ms.Clear()
	if ms.Len() != 0 {
		t.Fatal("clear left records")
	}
}

func TestMutableStoreDuplicate(t *testing.T) {
	ms := checkpoint.NewMutableStore(1)
	trig := protocol.Trigger{Pid: 2, Inum: 3}
	if err := ms.Save(state(1, 2), trig, 0); err != nil {
		t.Fatal(err)
	}
	if err := ms.Save(state(1, 2), trig, 0); !errors.Is(err, checkpoint.ErrDuplicateMutable) {
		t.Fatalf("err = %v, want ErrDuplicateMutable", err)
	}
}

func TestStatusString(t *testing.T) {
	if checkpoint.StatusTentative.String() != "tentative" ||
		checkpoint.StatusPermanent.String() != "permanent" ||
		checkpoint.StatusMutable.String() != "mutable" {
		t.Fatal("status names wrong")
	}
	if checkpoint.Status(0).String() != "status?" {
		t.Fatal("unknown status formatting")
	}
}
