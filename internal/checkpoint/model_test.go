package checkpoint_test

import (
	"testing"

	"mutablecp/internal/checkpoint"
	"mutablecp/internal/protocol"
	"mutablecp/internal/xrand"
)

// Model-based random testing: drive StableStore with random operation
// sequences and mirror every operation in a trivial map+slice model; the
// two must agree after every step.

type stableModel struct {
	permanent []int // csn history
	tentative map[protocol.Trigger]int
}

func TestStableStoreAgainstModel(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := xrand.New(seed * 7)
		st := checkpoint.NewStableStore(0, 2)
		model := &stableModel{permanent: []int{0}, tentative: map[protocol.Trigger]int{}}
		triggers := []protocol.Trigger{{Pid: 1, Inum: 1}, {Pid: 2, Inum: 1}, {Pid: 1, Inum: 2}}
		csn := 0
		for step := 0; step < 300; step++ {
			trig := triggers[rng.Intn(len(triggers))]
			switch rng.Intn(4) {
			case 0: // save tentative
				csn++
				s := state(0, 2)
				s.CSN = csn
				err := st.SaveTentative(s, trig, 0)
				_, exists := model.tentative[trig]
				if exists != (err != nil) {
					t.Fatalf("seed %d step %d: save err=%v model exists=%v", seed, step, err, exists)
				}
				if err == nil {
					model.tentative[trig] = csn
				} else {
					csn-- // not stored
				}
			case 1: // commit
				err := st.MakePermanent(trig, 0)
				v, exists := model.tentative[trig]
				if exists != (err == nil) {
					t.Fatalf("seed %d step %d: commit err=%v model exists=%v", seed, step, err, exists)
				}
				if err == nil {
					model.permanent = append(model.permanent, v)
					delete(model.tentative, trig)
				}
			case 2: // drop
				err := st.DropTentative(trig)
				_, exists := model.tentative[trig]
				if exists != (err == nil) {
					t.Fatalf("seed %d step %d: drop err=%v model exists=%v", seed, step, err, exists)
				}
				delete(model.tentative, trig)
			case 3: // gc
				keep := rng.Intn(3) + 1
				st.GC(keep)
				if len(model.permanent) > keep {
					model.permanent = model.permanent[len(model.permanent)-keep:]
				}
			}
			// Invariants after every step.
			if st.TentativeCount() != len(model.tentative) {
				t.Fatalf("seed %d step %d: tentative count %d vs model %d",
					seed, step, st.TentativeCount(), len(model.tentative))
			}
			hist := st.History()
			if len(hist) != len(model.permanent) {
				t.Fatalf("seed %d step %d: history %d vs model %d",
					seed, step, len(hist), len(model.permanent))
			}
			for i, rec := range hist {
				if rec.State.CSN != model.permanent[i] {
					t.Fatalf("seed %d step %d: history[%d]=%d vs model %d",
						seed, step, i, rec.State.CSN, model.permanent[i])
				}
			}
			if st.Permanent().State.CSN != model.permanent[len(model.permanent)-1] {
				t.Fatalf("seed %d step %d: latest permanent mismatch", seed, step)
			}
		}
	}
}

func TestMutableStoreAgainstModel(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := xrand.New(seed * 13)
		ms := checkpoint.NewMutableStore(0)
		model := map[protocol.Trigger]int{}
		triggers := []protocol.Trigger{{Pid: 1, Inum: 1}, {Pid: 2, Inum: 1}, {Pid: 3, Inum: 2}}
		csn := 0
		for step := 0; step < 300; step++ {
			trig := triggers[rng.Intn(len(triggers))]
			switch rng.Intn(3) {
			case 0: // save
				csn++
				s := state(0, 2)
				s.CSN = csn
				err := ms.Save(s, trig, 0)
				_, exists := model[trig]
				if exists != (err != nil) {
					t.Fatalf("seed %d step %d: save err=%v exists=%v", seed, step, err, exists)
				}
				if err == nil {
					model[trig] = csn
				}
			case 1: // take
				rec, err := ms.Take(trig)
				v, exists := model[trig]
				if exists != (err == nil) {
					t.Fatalf("seed %d step %d: take err=%v exists=%v", seed, step, err, exists)
				}
				if err == nil {
					if rec.State.CSN != v {
						t.Fatalf("seed %d step %d: took csn %d want %d", seed, step, rec.State.CSN, v)
					}
					delete(model, trig)
				}
			case 2: // get (non-destructive)
				rec, ok := ms.Get(trig)
				v, exists := model[trig]
				if ok != exists || (ok && rec.State.CSN != v) {
					t.Fatalf("seed %d step %d: get mismatch", seed, step)
				}
			}
			if ms.Len() != len(model) {
				t.Fatalf("seed %d step %d: len %d vs model %d", seed, step, ms.Len(), len(model))
			}
		}
	}
}
