// Package checkpoint models the two classes of checkpoint storage the
// paper distinguishes: the stable store that lives at a mobile support
// station (reachable only over the wireless link, survives MH failure) and
// the volatile mutable store in an MH's local memory or disk (cheap to
// write, lost on MH failure, never required for recovery).
package checkpoint

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mutablecp/internal/protocol"
)

// Status describes where a stored checkpoint is in its lifecycle.
type Status int

// Checkpoint lifecycle states.
const (
	StatusTentative Status = iota + 1
	StatusPermanent
	StatusMutable
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusTentative:
		return "tentative"
	case StatusPermanent:
		return "permanent"
	case StatusMutable:
		return "mutable"
	default:
		return "status?"
	}
}

// Record is one stored checkpoint.
type Record struct {
	State   protocol.State
	Trigger protocol.Trigger
	Status  Status
	SavedAt time.Duration
}

// Errors returned by the stores.
var (
	ErrNoTentative       = errors.New("checkpoint: no tentative checkpoint pending")
	ErrTentativePending  = errors.New("checkpoint: a tentative checkpoint is already pending")
	ErrNoMutable         = errors.New("checkpoint: no mutable checkpoint stored")
	ErrDuplicateMutable  = errors.New("checkpoint: mutable checkpoint for trigger already stored")
	ErrNoPermanent       = errors.New("checkpoint: no permanent checkpoint recorded")
	ErrUnknownCheckpoint = errors.New("checkpoint: unknown checkpoint")
)

// Store is the stable-storage lifecycle surface shared by the in-memory
// StableStore and the durable segment log in internal/stable: tentative
// write, promotion to permanent on commit, discard on abort, and
// garbage collection of superseded permanents. The runtimes (simrt,
// livenet) and the recovery manager speak only this interface, so a
// simulation can run against either backend.
type Store interface {
	// SeedPermanent replaces the pristine initial checkpoint with a
	// restored one; only valid on a fresh store.
	SeedPermanent(s protocol.State) error
	// SaveTentative records a tentative checkpoint for trig.
	SaveTentative(s protocol.State, trig protocol.Trigger, at time.Duration) error
	// Tentative returns the pending tentative checkpoint for trig, if any.
	Tentative(trig protocol.Trigger) (Record, bool)
	// TentativeCount reports how many tentative checkpoints are pending.
	TentativeCount() int
	// TentativeTriggers lists pending triggers in (Pid, Inum) order.
	TentativeTriggers() []protocol.Trigger
	// MakePermanent commits the pending tentative checkpoint for trig.
	MakePermanent(trig protocol.Trigger, at time.Duration) error
	// DropTentative discards the pending tentative checkpoint for trig.
	DropTentative(trig protocol.Trigger) error
	// Permanent returns the most recent permanent checkpoint.
	Permanent() Record
	// History returns a copy of all retained permanents, oldest first.
	History() []Record
	// GC discards all but the newest keep permanent checkpoints.
	GC(keep int) int
}

// StableStore holds one process's checkpoints on stable storage. In the
// paper's single-initiation regime a process keeps at most one permanent
// and one tentative checkpoint at a time; to support concurrent initiations
// (§3.5) tentative checkpoints are keyed by the trigger of their
// initiation. The store retains the permanent history until
// garbage-collected, which the recovery manager uses.
type StableStore struct {
	proc      protocol.ProcessID
	permanent []Record
	tentative map[protocol.Trigger]*Record

	// retain bounds the permanent history: committing a new permanent
	// checkpoint garbage-collects superseded ones beyond the newest
	// retain (the paper's discard rule — once C_{p,k+1} is permanent,
	// C_{p,k} can never be needed again). 0 keeps everything, the audit
	// setting the experiment harnesses use to replay line history.
	retain int
}

var _ Store = (*StableStore)(nil)

// NewStableStore returns a store for the given process, seeded with an
// initial permanent checkpoint (sequence number 0, empty state): the paper
// numbers checkpoints from C_{p,0}, the pristine process state. The
// initial counters are empty truncated vectors (all-zero semantics, see
// protocol.State) so a million idle processes don't pay O(N) each here.
func NewStableStore(proc protocol.ProcessID, n int) *StableStore {
	_ = n // arity kept for store-factory compatibility
	initial := Record{
		State:   protocol.State{Proc: proc, CSN: 0},
		Trigger: protocol.NoTrigger,
		Status:  StatusPermanent,
	}
	return &StableStore{
		proc:      proc,
		permanent: []Record{initial},
		tentative: make(map[protocol.Trigger]*Record),
	}
}

// RestoreStableStore rebuilds a store from a saved image: the retained
// permanent history (oldest first) and any pending tentatives. The
// durable store uses it to apply snapshot records at open.
func RestoreStableStore(proc protocol.ProcessID, perm, tent []Record) (*StableStore, error) {
	if len(perm) == 0 {
		return nil, fmt.Errorf("checkpoint: restore P%d with no permanent checkpoint", proc)
	}
	st := &StableStore{
		proc:      proc,
		permanent: make([]Record, 0, len(perm)),
		tentative: make(map[protocol.Trigger]*Record, len(tent)),
	}
	for _, r := range perm {
		if r.Status != StatusPermanent {
			return nil, fmt.Errorf("checkpoint: restore P%d: %v record in permanent history", proc, r.Status)
		}
		r.State = r.State.Clone()
		st.permanent = append(st.permanent, r)
	}
	for _, r := range tent {
		if r.Status != StatusTentative {
			return nil, fmt.Errorf("checkpoint: restore P%d: %v record in tentative set", proc, r.Status)
		}
		if _, ok := st.tentative[r.Trigger]; ok {
			return nil, fmt.Errorf("checkpoint: restore P%d: duplicate tentative for %+v", proc, r.Trigger)
		}
		rec := r
		rec.State = r.State.Clone()
		st.tentative[r.Trigger] = &rec
	}
	return st, nil
}

// SetRetain bounds the permanent history kept after each commit; see the
// retain field. k <= 0 keeps everything.
func (st *StableStore) SetRetain(k int) {
	if k < 0 {
		k = 0
	}
	st.retain = k
}

// Retain reports the configured permanent-history bound (0 = unbounded).
func (st *StableStore) Retain() int { return st.retain }

// SeedPermanent replaces the pristine initial checkpoint with a restored
// one (recovery restart). It is only valid on a fresh store.
func (st *StableStore) SeedPermanent(s protocol.State) error {
	if len(st.permanent) != 1 || len(st.tentative) != 0 {
		return fmt.Errorf("checkpoint: SeedPermanent on a used store (P%d)", st.proc)
	}
	st.permanent[0] = Record{State: s.Clone(), Trigger: protocol.NoTrigger, Status: StatusPermanent}
	return nil
}

// SaveTentative records a tentative checkpoint for the given trigger. At
// most one tentative checkpoint may be pending per trigger.
func (st *StableStore) SaveTentative(s protocol.State, trig protocol.Trigger, at time.Duration) error {
	if _, ok := st.tentative[trig]; ok {
		return ErrTentativePending
	}
	rec := Record{State: s.Clone(), Trigger: trig, Status: StatusTentative, SavedAt: at}
	st.tentative[trig] = &rec
	return nil
}

// Tentative returns the pending tentative checkpoint for trig, if any.
func (st *StableStore) Tentative(trig protocol.Trigger) (Record, bool) {
	rec, ok := st.tentative[trig]
	if !ok {
		return Record{}, false
	}
	return *rec, true
}

// TentativeCount reports how many tentative checkpoints are pending.
func (st *StableStore) TentativeCount() int { return len(st.tentative) }

// TentativeTriggers lists the triggers of all pending tentative
// checkpoints in deterministic (Pid, Inum) order. The chaos gauntlet uses
// it to attribute leaked tentatives to the instance that created them.
func (st *StableStore) TentativeTriggers() []protocol.Trigger {
	out := make([]protocol.Trigger, 0, len(st.tentative))
	for trig := range st.tentative {
		out = append(out, trig)
	}
	sortTriggers(out)
	return out
}

// MakePermanent commits the pending tentative checkpoint for trig.
func (st *StableStore) MakePermanent(trig protocol.Trigger, at time.Duration) error {
	rec, ok := st.tentative[trig]
	if !ok {
		return ErrNoTentative
	}
	committed := *rec
	committed.Status = StatusPermanent
	committed.SavedAt = at
	st.permanent = append(st.permanent, committed)
	delete(st.tentative, trig)
	if st.retain > 0 {
		// The paper's discard rule: the checkpoint this one supersedes is
		// dead the moment the commit lands, so long-running systems must
		// not accumulate it (this mirrors disk compaction in
		// internal/stable, which garbage-collects superseded permanents
		// from the segment log).
		st.GC(st.retain)
	}
	return nil
}

// DropTentative discards the pending tentative checkpoint for trig
// (abort path).
func (st *StableStore) DropTentative(trig protocol.Trigger) error {
	if _, ok := st.tentative[trig]; !ok {
		return ErrNoTentative
	}
	delete(st.tentative, trig)
	return nil
}

// Permanent returns the most recent permanent checkpoint.
func (st *StableStore) Permanent() Record {
	return st.permanent[len(st.permanent)-1]
}

// History returns a copy of all permanent checkpoints, oldest first.
func (st *StableStore) History() []Record {
	return append([]Record(nil), st.permanent...)
}

// GC discards all but the newest keep permanent checkpoints. The paper's
// coordinated approach needs only the latest consistent line, so keep=1 is
// the common setting.
func (st *StableStore) GC(keep int) int {
	if keep < 1 {
		keep = 1
	}
	if len(st.permanent) <= keep {
		return 0
	}
	dropped := len(st.permanent) - keep
	st.permanent = append([]Record(nil), st.permanent[dropped:]...)
	return dropped
}

// MutableStore holds a process's mutable checkpoints, keyed by the trigger
// of the initiation that caused them. The paper's Fig. 3 shows a process
// holding mutable checkpoints for two concurrent initiations (C1,1 and
// C1,2) at once, so the store is a map rather than a single slot.
type MutableStore struct {
	proc protocol.ProcessID
	recs map[protocol.Trigger]Record
}

// NewMutableStore returns an empty mutable store.
func NewMutableStore(proc protocol.ProcessID) *MutableStore {
	return &MutableStore{proc: proc, recs: make(map[protocol.Trigger]Record)}
}

// Save stores a mutable checkpoint for the given trigger.
func (ms *MutableStore) Save(s protocol.State, trig protocol.Trigger, at time.Duration) error {
	if _, ok := ms.recs[trig]; ok {
		return ErrDuplicateMutable
	}
	ms.recs[trig] = Record{State: s.Clone(), Trigger: trig, Status: StatusMutable, SavedAt: at}
	return nil
}

// Take removes and returns the mutable checkpoint for trig.
func (ms *MutableStore) Take(trig protocol.Trigger) (Record, error) {
	rec, ok := ms.recs[trig]
	if !ok {
		return Record{}, fmt.Errorf("%w: trigger %+v", ErrNoMutable, trig)
	}
	delete(ms.recs, trig)
	return rec, nil
}

// Get returns the mutable checkpoint for trig without removing it.
func (ms *MutableStore) Get(trig protocol.Trigger) (Record, bool) {
	rec, ok := ms.recs[trig]
	return rec, ok
}

// Len returns the number of stored mutable checkpoints.
func (ms *MutableStore) Len() int { return len(ms.recs) }

// Triggers lists the triggers of all stored mutable checkpoints in
// deterministic (Pid, Inum) order.
func (ms *MutableStore) Triggers() []protocol.Trigger {
	out := make([]protocol.Trigger, 0, len(ms.recs))
	for trig := range ms.recs {
		out = append(out, trig)
	}
	sortTriggers(out)
	return out
}

func sortTriggers(ts []protocol.Trigger) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Pid != ts[j].Pid {
			return ts[i].Pid < ts[j].Pid
		}
		return ts[i].Inum < ts[j].Inum
	})
}

// Clear discards all mutable checkpoints (MH failure wipes them).
func (ms *MutableStore) Clear() { ms.recs = make(map[protocol.Trigger]Record) }
