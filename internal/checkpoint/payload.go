package checkpoint

import (
	"errors"
	"time"

	"mutablecp/internal/protocol"
)

// Payload-plane errors.
var (
	ErrNoPayload      = errors.New("checkpoint: no payload for trigger")
	ErrPayloadPending = errors.New("checkpoint: a payload is already pending for trigger")
	ErrNoPermPayload  = errors.New("checkpoint: no permanent payload committed")
)

// PayloadReceipt describes what one payload save cost after chunk-level
// dedup and delta encoding. NewBytes is the only data that actually
// crosses the wireless medium and lands on disk; LogicalBytes is the
// full process-image size a naive snapshot would have transferred.
type PayloadReceipt struct {
	LogicalBytes uint64 // process image size
	NewBytes     uint64 // chunk + patch bytes actually written
	Chunks       int    // chunks in the manifest
	NewChunks    int    // chunks not present in the store before this save
	DedupChunks  int    // chunks satisfied by an existing identical chunk
	DeltaChunks  int    // new chunks stored as patches against a base
}

// PayloadStore is the optional data plane behind a Store: where Store
// tracks the ~10KB protocol state of a checkpoint, a PayloadStore holds
// the process image itself, content-addressed and deduplicated. The
// lifecycle mirrors Store exactly — a payload is saved tentatively with
// its trigger, committed when the instance commits, dropped when it
// aborts — so the runtimes drive both from the same Env hooks. A nil
// PayloadStore means the run is control-plane only (the pre-data-plane
// behaviour).
type PayloadStore interface {
	// SavePayload stores the process image for a tentative checkpoint.
	SavePayload(trig protocol.Trigger, at time.Duration, image []byte) (PayloadReceipt, error)
	// CommitPayload promotes trig's tentative payload to permanent.
	CommitPayload(trig protocol.Trigger, at time.Duration) error
	// DropPayload discards trig's tentative payload (abort path).
	DropPayload(trig protocol.Trigger) error
	// PermanentPayload materializes the newest permanent payload image.
	// ok is false when no payload has been committed yet.
	PermanentPayload() (image []byte, ok bool, err error)
	// RestorePayloadBytes prices a restore of the newest permanent
	// payload: the deduped distinct-chunk bytes the wireless transfer
	// must carry. ok is false when no payload has been committed yet.
	RestorePayloadBytes() (bytes uint64, ok bool)
	// VerifyPayload checks that every retained manifest resolves to
	// intact, hash-verified chunks.
	VerifyPayload() error
}
