package harness

import (
	"fmt"
	"strings"
	"time"
)

// ScaleRow is one point of the N-scaling sweep: per-initiation message
// costs of the three Table 1 algorithms at system size N.
type ScaleRow struct {
	N           int
	KooTouegMsg float64
	ElnozahyMsg float64
	MutableMsg  float64
	MutableCkpt float64
}

// ScaleSweep measures how the system-message overhead grows with N at a
// rate where the dependency set saturates: the paper's complexity claims
// (Koo–Toueg O(N·Ndep) → O(N²); mutable and Elnozahy O(N)) become visible
// as the curves diverge.
func ScaleSweep(ns []int, rate float64, seeds []uint64) ([]ScaleRow, error) {
	return Sequential().ScaleSweep(ns, rate, seeds)
}

// ScaleSweep is the parallel form of the package-level ScaleSweep: every
// (N, algorithm, seed) cell is an independent simulation.
func (r *Runner) ScaleSweep(ns []int, rate float64, seeds []uint64) ([]ScaleRow, error) {
	if len(ns) == 0 {
		ns = []int{4, 8, 16, 32}
	}
	algos := []string{AlgoKooToueg, AlgoElnozahy, AlgoMutable}
	merged, err := r.runGrid(len(ns)*len(algos), seeds,
		func(cell int) Config {
			return Config{
				Algorithm: algos[cell%len(algos)],
				N:         ns[cell/len(algos)],
				Workload:  WorkloadP2P,
				Rate:      rate,
				Horizon:   15 * 900 * time.Second,
			}
		},
		func(cell int) string {
			return fmt.Sprintf("N=%d %s", ns[cell/len(algos)], algos[cell%len(algos)])
		})
	if err != nil {
		return nil, err
	}
	rows := make([]ScaleRow, 0, len(ns))
	for i, n := range ns {
		row := ScaleRow{N: n}
		for j, algo := range algos {
			res := merged[i*len(algos)+j]
			if !res.ConsistencyOK {
				return nil, fmt.Errorf("N=%d %s: %v", n, algo, res.ConsistencyErr)
			}
			switch algo {
			case AlgoKooToueg:
				row.KooTouegMsg = res.SysMsgs.Mean()
			case AlgoElnozahy:
				row.ElnozahyMsg = res.SysMsgs.Mean()
			case AlgoMutable:
				row.MutableMsg = res.SysMsgs.Mean()
				row.MutableCkpt = res.Tentative.Mean()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatScale renders the N-scaling sweep.
func FormatScale(rate float64, rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Message overhead vs system size (rate %g msg/s/process)\n", rate)
	fmt.Fprintf(&b, "%-6s %-20s %-20s %-20s\n",
		"N", "koo-toueg msgs/init", "elnozahy msgs/init", "mutable msgs/init")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %-20.1f %-20.1f %-20.1f\n",
			r.N, r.KooTouegMsg, r.ElnozahyMsg, r.MutableMsg)
	}
	return b.String()
}

// IntervalRow is one point of the checkpoint-interval sweep.
type IntervalRow struct {
	Interval    time.Duration
	Tentative   float64
	Redundant   float64
	DurationSec float64
}

// IntervalSweep varies the paper's 900-second checkpoint interval: shorter
// intervals shrink every dependency window (fewer tentative checkpoints
// per initiation) while the checkpointing time itself stays put, so the
// redundant-mutable window grows in relative terms.
func IntervalSweep(intervals []time.Duration, rate float64, seeds []uint64) ([]IntervalRow, error) {
	return Sequential().IntervalSweep(intervals, rate, seeds)
}

// IntervalSweep is the parallel form of the package-level IntervalSweep.
func (r *Runner) IntervalSweep(intervals []time.Duration, rate float64, seeds []uint64) ([]IntervalRow, error) {
	if len(intervals) == 0 {
		intervals = []time.Duration{
			100 * time.Second, 300 * time.Second, 900 * time.Second, 2700 * time.Second,
		}
	}
	merged, err := r.runGrid(len(intervals), seeds,
		func(cell int) Config {
			return Config{
				Algorithm: AlgoMutable,
				Workload:  WorkloadP2P,
				Rate:      rate,
				Interval:  intervals[cell],
				Horizon:   40 * intervals[cell],
			}
		},
		func(cell int) string { return fmt.Sprintf("interval %v", intervals[cell]) })
	if err != nil {
		return nil, err
	}
	rows := make([]IntervalRow, 0, len(intervals))
	for i, res := range merged {
		if !res.ConsistencyOK {
			return nil, fmt.Errorf("interval %v: %v", intervals[i], res.ConsistencyErr)
		}
		rows = append(rows, IntervalRow{
			Interval:    intervals[i],
			Tentative:   res.Tentative.Mean(),
			Redundant:   res.Redundant.Mean(),
			DurationSec: res.DurationSec.Mean(),
		})
	}
	return rows, nil
}

// FormatIntervals renders the interval sweep.
func FormatIntervals(rate float64, rows []IntervalRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Checkpoint-interval sensitivity (rate %g msg/s/process, N=16)\n", rate)
	fmt.Fprintf(&b, "%-10s %-18s %-18s %-14s\n",
		"interval", "tentative/init", "redundant/init", "T_ch (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-18.2f %-18.4f %-14.2f\n",
			r.Interval, r.Tentative, r.Redundant, r.DurationSec)
	}
	return b.String()
}

// CSV renders a figure series as comma-separated values for plotting.
func (s *FigSeries) CSV() string {
	var b strings.Builder
	b.WriteString("rate,tentative,tentative_ci95,redundant,redundant_ci95,initiations\n")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%g,%g,%g,%g,%g,%d\n",
			r.Rate, r.Tentative, r.TentativeCI, r.Redundant, r.RedundantCI, r.Initiations)
	}
	return b.String()
}
