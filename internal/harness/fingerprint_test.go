package harness

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files from the current engine")

// goldenGrid is the seed-for-seed equivalence matrix: enough workload
// shapes, process counts (including N > 64 to cross a bitset word
// boundary), and seeds that any behavioural or formatting drift in the
// mutable engine changes at least one fingerprint.
type goldenCase struct {
	name string
	cfg  Config
}

func goldenGrid() []goldenCase {
	short := 6 * 900 * time.Second
	var grid []goldenCase
	for _, n := range []int{4, 16} {
		for seed := uint64(1); seed <= 3; seed++ {
			grid = append(grid, goldenCase{
				name: caseName("p2p", n, seed),
				cfg: Config{Algorithm: AlgoMutable, N: n, Seed: seed,
					Workload: WorkloadP2P, Rate: 0.05, Horizon: short},
			})
		}
	}
	// Multi-word dependency vectors (N > 64).
	grid = append(grid, goldenCase{
		name: caseName("p2p", 96, 1),
		cfg: Config{Algorithm: AlgoMutable, N: 96, Seed: 1,
			Workload: WorkloadP2P, Rate: 0.05, Horizon: 4 * 900 * time.Second},
	})
	for seed := uint64(1); seed <= 2; seed++ {
		grid = append(grid, goldenCase{
			name: caseName("group", 16, seed),
			cfg: Config{Algorithm: AlgoMutable, N: 16, Seed: seed,
				Workload: WorkloadGroup, Rate: 0.05, Horizon: short},
		})
		grid = append(grid, goldenCase{
			name: caseName("client-server", 24, seed),
			cfg: Config{Algorithm: AlgoMutable, N: 24, Seed: seed,
				Workload: WorkloadClientServer, Rate: 0.05, Horizon: short},
		})
	}
	// Targeted commit dissemination exercises the notify-set paths.
	grid = append(grid, goldenCase{
		name: "targeted/p2p-n16-seed1",
		cfg: Config{Algorithm: AlgoMutableTargeted, N: 16, Seed: 1,
			Workload: WorkloadP2P, Rate: 0.05, Horizon: short},
	})
	// Doze-mode wakeups reorder deliveries relative to the active case.
	grid = append(grid, goldenCase{
		name: "doze/p2p-n16-seed1",
		cfg: Config{Algorithm: AlgoMutable, N: 16, Seed: 1,
			Workload: WorkloadP2P, Rate: 0.05, Horizon: short, DozeCount: 4},
	})
	return grid
}

func caseName(wl string, n int, seed uint64) string {
	return fmt.Sprintf("%s-n%d-seed%d", wl, n, seed)
}

const goldenPath = "testdata/engine_fingerprints.json"

// TestEngineFingerprintGolden locks the mutable engine's execution,
// message contents, and trace formatting seed-for-seed: the committed
// golden file was captured from the pre-bitset []bool engine, so any
// representation change that is not byte-identical fails here.
func TestEngineFingerprintGolden(t *testing.T) {
	grid := goldenGrid()
	if testing.Short() {
		grid = grid[:4]
	}
	got := make(map[string]string, len(grid))
	for _, gc := range grid {
		fp, err := TraceFingerprint(gc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", gc.name, err)
		}
		got[gc.name] = fp
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fingerprints to %s", len(got), goldenPath)
		return
	}
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to capture): %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no golden fingerprint recorded (run with -update)", name)
			continue
		}
		if got[name] != w {
			t.Errorf("%s: fingerprint %s, golden %s — engine execution diverged from the recorded []bool baseline",
				name, got[name], w)
		}
	}
}

// TestTraceFingerprintDeterministic guards the oracle itself: the same
// configuration must digest identically twice in one process.
func TestTraceFingerprintDeterministic(t *testing.T) {
	cfg := Config{Algorithm: AlgoMutable, N: 8, Seed: 7,
		Workload: WorkloadP2P, Rate: 0.05, Horizon: 3 * 900 * time.Second}
	a, err := TraceFingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TraceFingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same config diverged: %s vs %s", a, b)
	}
	c, err := TraceFingerprint(Config{Algorithm: AlgoMutable, N: 8, Seed: 8,
		Workload: WorkloadP2P, Rate: 0.05, Horizon: 3 * 900 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatalf("different seeds produced equal fingerprints %s", a)
	}
}
