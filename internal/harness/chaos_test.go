package harness

import (
	"strings"
	"testing"
	"time"
)

// gauntletSeeds returns the seed set, reduced under -short.
func gauntletSeeds(t *testing.T) []uint64 {
	if testing.Short() {
		return []uint64{1, 2}
	}
	return []uint64{1, 2, 3, 4, 5}
}

// shortPoints trims the grid under -short: the control point, the two
// fault extremes, and the crash-and-recover point still cover every fault
// kind and both crash fates (permanent and recovered).
func shortPoints(t *testing.T) []ChaosPoint {
	pts := DefaultChaosPoints()
	if testing.Short() {
		return []ChaosPoint{pts[0], pts[2], pts[4], pts[5]}
	}
	return pts
}

// TestChaosGauntlet is the PR's acceptance gate: the full operating grid,
// every committed line orphan-checked, every abort verified clean. A
// failure names the first failing point and seed.
func TestChaosGauntlet(t *testing.T) {
	points := shortPoints(t)
	seeds := gauntletSeeds(t)
	rows, err := Parallel(0).ChaosGauntlet(points, seeds)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatChaos(rows))
	for _, row := range rows {
		if row.Committed == 0 {
			t.Errorf("%s: no instance committed — the point is vacuous", row.Label)
		}
		if row.LinesChecked != row.Committed {
			t.Errorf("%s: checked %d lines for %d commits", row.Label, row.LinesChecked, row.Committed)
		}
	}
	clean := rows[0]
	if clean.Label != "clean" {
		t.Fatalf("first point is %q, want the clean control", clean.Label)
	}
	if clean.Dropped != 0 || clean.GaveUp != 0 || clean.TimeoutAborts != 0 || clean.Aborted != 0 {
		t.Errorf("clean control point saw faults: %+v", clean)
	}
	for _, row := range rows[1:] {
		if row.Dropped == 0 && row.Duplicated == 0 {
			t.Errorf("%s: fault injection never engaged", row.Label)
		}
		if row.PartitionDropped == 0 {
			t.Errorf("%s: partition window cut no traffic", row.Label)
		}
	}
	// The heavy points crash a host mid-run: the crashed host's pending
	// traffic must have been cut and at least one §3.6 timeout must have
	// resolved an instance that depended on it.
	var crashTimeouts uint64
	for i, row := range rows {
		if points[i].Config.CrashCount > 0 {
			crashTimeouts += row.TimeoutAborts
			if row.CrashDropped == 0 {
				t.Errorf("%s: crash cut no traffic", row.Label)
			}
		}
	}
	if crashTimeouts == 0 {
		t.Error("no crash point ever fired a §3.6 timeout abort")
	}
	// The recover point's verdict must be unanimous, and no plain point
	// may claim one.
	for i, row := range rows {
		want := 0
		if points[i].Config.CrashRestartAfter > 0 {
			want = row.Seeds
		}
		if row.Recovered != want {
			t.Errorf("%s: recovered %d seeds, want %d", row.Label, row.Recovered, want)
		}
	}
}

// TestChaosDeterminism: identical seed and fault config must reproduce
// byte-identical metrics; a different seed must not.
func TestChaosDeterminism(t *testing.T) {
	cfg := ChaosConfig{
		Seed: 7, Drop: 0.15, Dup: 0.05, JitterMax: 5 * time.Millisecond,
		PartitionWindow: 10 * time.Second, CrashCount: 1,
		Horizon: 6 * 300 * time.Second,
	}
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same seed diverged:\n%s\n%s", a.Fingerprint, b.Fingerprint)
	}
	cfg.Seed = 8
	c, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestChaosDurableMSSRestart runs the gauntlet's heavy fault mix with the
// durable store backend and a storage crash+restart at Horizon/2: every
// store closes and recovers from disk while instances are in flight. The
// protocol must not notice, the usual line/leak verification must pass,
// and the post-run disk-fidelity audit must find the on-disk image equal
// to the verified in-memory state.
func TestChaosDurableMSSRestart(t *testing.T) {
	res, err := RunChaos(ChaosConfig{
		Seed: 11, Drop: 0.05, Dup: 0.05, JitterMax: 5 * time.Millisecond,
		PartitionWindow: 10 * time.Second, CrashCount: 1,
		Horizon:    6 * 300 * time.Second,
		StoreDir:   t.TempDir(),
		MSSRestart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed across the MSS restart")
	}
	if res.LinesChecked != res.Committed {
		t.Fatalf("checked %d lines for %d commits", res.LinesChecked, res.Committed)
	}

	// Same seed, same faults, in-memory stores, no restart: the storage
	// backend must be invisible to the protocol — identical fingerprint up
	// to the DES event count (the restart callback is itself one event).
	mem, err := RunChaos(ChaosConfig{
		Seed: 11, Drop: 0.05, Dup: 0.05, JitterMax: 5 * time.Millisecond,
		PartitionWindow: 10 * time.Second, CrashCount: 1,
		Horizon: 6 * 300 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	trim := func(fp string) string { return fp[:strings.LastIndex(fp, " events=")] }
	if trim(res.Fingerprint) != trim(mem.Fingerprint) {
		t.Fatalf("durable backend changed the run:\n%s\n%s", res.Fingerprint, mem.Fingerprint)
	}
}

// TestChaosMSSRestartRequiresDurableStore: the misconfiguration (restart
// with in-memory stores) must be rejected up front, not fail obscurely.
func TestChaosMSSRestartRequiresDurableStore(t *testing.T) {
	if _, err := RunChaos(ChaosConfig{Seed: 1, MSSRestart: true}); err == nil {
		t.Fatal("MSSRestart without StoreDir accepted")
	}
}

// TestChaosRecoverDurable runs the crash-and-recover point with durable
// stores: the rollback executes against disk-backed checkpoint state (the
// restore reads what the log recovers, the rollback's tentative drops are
// real deletions), and the final disk-fidelity audit proves the on-disk
// image still equals the verified post-recovery state.
func TestChaosRecoverDurable(t *testing.T) {
	res, err := RunChaos(ChaosConfig{
		Seed: 7, Drop: 0.05, Dup: 0.05, JitterMax: 5 * time.Millisecond,
		PartitionWindow: 10 * time.Second, CrashCount: 1,
		CrashRestartAfter: 20 * time.Second,
		Horizon:           6 * 300 * time.Second,
		StoreDir:          t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.RecoveredOK {
		t.Fatal("crash-and-recover run did not earn the RecoveredOK verdict")
	}
	if res.Restarts != 1 || res.PeerRollbacks != uint64(res.Config.N-1) {
		t.Fatalf("restarts=%d peerRollbacks=%d, want 1/%d",
			res.Restarts, res.PeerRollbacks, res.Config.N-1)
	}
	if res.RecoveryTime < 20*time.Second {
		t.Fatalf("recovery time %v below the 20s down window", res.RecoveryTime)
	}
	if res.Rel.ChannelResets == 0 {
		t.Fatal("recovery re-established no ARQ channels")
	}
}

// TestChaosRecoverDeterminism: the recover point must stay bit-reproducible
// — the crash, the rollback, the replay, and the resumed run all land on
// identical fingerprints for identical seeds.
func TestChaosRecoverDeterminism(t *testing.T) {
	cfg := ChaosConfig{
		Seed: 7, Drop: 0.05, Dup: 0.05, JitterMax: 5 * time.Millisecond,
		PartitionWindow: 10 * time.Second, CrashCount: 1,
		CrashRestartAfter: 20 * time.Second,
		Horizon:           6 * 300 * time.Second,
	}
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same seed diverged:\n%s\n%s", a.Fingerprint, b.Fingerprint)
	}
}

// TestChaosRecoverValidation: crash-and-recover with anything but exactly
// one victim is a configuration error, reported up front.
func TestChaosRecoverValidation(t *testing.T) {
	for _, crashes := range []int{0, 2} {
		if _, err := RunChaos(ChaosConfig{
			Seed: 1, CrashCount: crashes, CrashRestartAfter: 20 * time.Second,
		}); err == nil {
			t.Errorf("CrashRestartAfter with CrashCount=%d accepted", crashes)
		}
	}
}

// TestChaosPartialCommitPoint: with PartialCommit, a crash mid-run still
// lets uncontaminated subtrees commit, and the partial lines stay
// consistent (they are checked like any other committed line).
func TestChaosPartialCommitPoint(t *testing.T) {
	res, err := RunChaos(ChaosConfig{
		Seed: 3, Drop: 0.10, Dup: 0.05, JitterMax: 5 * time.Millisecond,
		PartitionWindow: 10 * time.Second, CrashCount: 1, PartialCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed under partial-commit chaos")
	}
	if res.LinesChecked != res.Committed {
		t.Fatalf("checked %d lines for %d commits", res.LinesChecked, res.Committed)
	}
}
