package harness

import (
	"strings"
	"testing"
	"time"

	"mutablecp/internal/recovery"
)

// fastRecovery keeps the crash-and-recover runs small enough for the
// unit suite: 5 processes, 10 one-minute intervals.
func fastRecovery(algo string, failures int) RecoveryConfig {
	return RecoveryConfig{
		Algorithm:    algo,
		N:            5,
		Seed:         3,
		Rate:         1.5,
		Interval:     60 * time.Second,
		Horizon:      600 * time.Second,
		Failures:     failures,
		RestartAfter: 20 * time.Second,
	}
}

func TestRunRecoveryAllFamilies(t *testing.T) {
	for _, algo := range RecoveryFamilies() {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			res, err := RunRecovery(fastRecovery(algo, 1))
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range res.ClusterErrors {
				t.Errorf("cluster error: %v", e)
			}
			if res.Crashes != 1 || res.Restarts != 1 {
				t.Fatalf("crashes=%d restarts=%d, want 1/1", res.Crashes, res.Restarts)
			}
			if !res.PostRecoveryOK {
				t.Fatalf("post-recovery inconsistent: %v", res.PostRecoveryErr)
			}
			if res.NewCommits == 0 {
				t.Fatal("no commit after recovery")
			}
			if len(res.Reports) != 1 {
				t.Fatalf("reports = %d, want 1", len(res.Reports))
			}
			// The recovery-scope split that motivates the comparison.
			if algo == AlgoLogBased {
				if res.Mode != recovery.ModeLog || res.PeerRollbacks != 0 {
					t.Fatalf("log-based: mode=%v peerRollbacks=%d, want log/0", res.Mode, res.PeerRollbacks)
				}
				if res.LoggedMsgs == 0 {
					t.Fatal("log-based run accumulated no log entries")
				}
			} else {
				if res.Mode != recovery.ModeRollback || res.PeerRollbacks != 4 {
					t.Fatalf("%s: mode=%v peerRollbacks=%d, want rollback/4", algo, res.Mode, res.PeerRollbacks)
				}
				if res.SysMsgsPerInit == 0 {
					t.Fatalf("%s reported zero system messages per initiation", algo)
				}
			}
		})
	}
}

func TestRunRecoveryFailureFreeBaseline(t *testing.T) {
	res, err := RunRecovery(fastRecovery(AlgoMutable, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 0 || res.Restarts != 0 || res.RecoveryTime != 0 {
		t.Fatalf("failure-free run recorded crashes=%d restarts=%d rt=%v",
			res.Crashes, res.Restarts, res.RecoveryTime)
	}
	if res.Initiations == 0 || res.SysMsgsPerInit == 0 {
		t.Fatalf("baseline produced no overhead signal (inits=%d sys/init=%g)",
			res.Initiations, res.SysMsgsPerInit)
	}
}

func TestRecoveryConfigValidation(t *testing.T) {
	cfg := fastRecovery(AlgoMutable, 2)
	cfg.RestartAfter = 250 * time.Second // spacing 200s < down window
	if _, err := RunRecovery(cfg); err == nil {
		t.Fatal("overlapping outages accepted")
	}
	cfg = fastRecovery(AlgoMutable, -1)
	if _, err := RunRecovery(cfg); err == nil {
		t.Fatal("negative failure count accepted")
	}
	cfg = fastRecovery("no-such-algo", 1)
	if _, err := RunRecovery(cfg); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRecoverySweepAndFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is 8 full runs")
	}
	base := fastRecovery(AlgoMutable, 0)
	rows, err := RecoverySweep([]int{0, 1}, []uint64{3}, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(RecoveryFamilies())*2 {
		t.Fatalf("rows = %d, want %d", len(rows), len(RecoveryFamilies())*2)
	}
	for _, r := range rows {
		if r.Failures == 0 {
			continue
		}
		if r.Algorithm == AlgoLogBased {
			if r.PeerRollbacks != 0 {
				t.Fatalf("log-based peer rollbacks = %g, want 0", r.PeerRollbacks)
			}
		} else if r.PeerRollbacks != 4 {
			t.Fatalf("%s peer rollbacks = %g, want 4", r.Algorithm, r.PeerRollbacks)
		}
		if r.RecoverySec < 20 {
			t.Fatalf("%s recovery %gs below the 20s down window", r.Algorithm, r.RecoverySec)
		}
	}
	out := FormatRecovery(base, rows)
	for _, want := range []string{"Executed recovery comparison", "peer-rollbacks", AlgoLogBased, AlgoKooToueg} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestRunRecoveryMutationDetected(t *testing.T) {
	cfg := fastRecovery(AlgoLogBased, 1)
	cfg.Mutation = recovery.MutSkipDedup
	res, err := RunRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PostRecoveryOK {
		t.Fatal("skip-dedup mutation survived the post-recovery consistency check")
	}
}
