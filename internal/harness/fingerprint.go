package harness

import (
	"fmt"
	"hash/fnv"
	"io"

	"mutablecp/internal/protocol"
	"mutablecp/internal/simrt"
	"mutablecp/internal/trace"
)

// TraceFingerprint runs one experiment with a structured trace attached
// and digests the complete execution: every trace event string in order,
// each process's final channel counters and engine state, the permanent
// checkpoint history, and the simulated event count. Two runs with equal
// fingerprints executed byte-identically, which makes the digest the
// equivalence oracle for engine-representation refactors: any change to
// message contents, checkpoint decisions, trace formatting, or state
// accessors shows up as a different fingerprint for the same seed.
func TraceFingerprint(cfg Config) (string, error) {
	cfg = cfg.defaults()
	tl := trace.New()
	cluster, pr, err := runCluster(cfg, tl)
	if err != nil {
		return "", err
	}
	defer pr.close()
	h := fnv.New64a()
	for _, ev := range tl.Events() {
		io.WriteString(h, ev.String()) //nolint:errcheck
		h.Write([]byte{'\n'})          //nolint:errcheck
	}
	digestCluster(h, cluster)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// StateFingerprint digests the final cluster state — per-process channel
// counters, engine state, permanent checkpoint history, and the executed
// event count — without requiring a trace. It is the equivalence oracle
// for the parallel kernel: cell mode rejects tracing (there is no global
// event order to record), but the sharded kernel's barrier merge makes
// the execution itself worker-count invariant, so the final state digest
// for CellWorkers=K must be byte-identical to the CellWorkers=1
// reference run of the same configuration and seed.
func StateFingerprint(cfg Config) (string, error) {
	cfg = cfg.defaults()
	cluster, pr, err := runCluster(cfg, nil)
	if err != nil {
		return "", err
	}
	defer pr.close()
	h := fnv.New64a()
	digestCluster(h, cluster)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

func digestCluster(h io.Writer, cluster *simrt.Cluster) {
	for p := 0; p < cluster.N(); p++ {
		proc := cluster.Proc(protocol.ProcessID(p))
		st := proc.CaptureState()
		// Counters are stored truncated; render padded to N so the digest
		// stays byte-identical to the dense-representation goldens.
		fmt.Fprintf(h, "P%d sent=%v recv=%v\n", p,
			protocol.PadCounters(st.SentTo, cluster.N()),
			protocol.PadCounters(st.RecvFrom, cluster.N()))
		if eng, ok := proc.Engine().(engineState); ok {
			fmt.Fprintf(h, "csn=%v r=%v sent=%v old=%d\n",
				eng.CSN(), eng.DependencyVector(), eng.Sent(), eng.OldCSN())
		}
		for _, rec := range proc.Stable().History() {
			fmt.Fprintf(h, "perm csn=%d trig=%+v\n", rec.State.CSN, rec.Trigger)
		}
	}
	fmt.Fprintf(h, "events=%d", cluster.Executed())
}

// engineState is the engine surface the fingerprint folds in. The []bool
// and []int forms are the stable cross-representation boundary: engines
// may store state however they like but must render it identically here.
type engineState interface {
	CSN() []int
	DependencyVector() []bool
	Sent() bool
	OldCSN() int
}
