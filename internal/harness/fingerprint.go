package harness

import (
	"fmt"
	"hash/fnv"
	"io"

	"mutablecp/internal/protocol"
	"mutablecp/internal/trace"
)

// TraceFingerprint runs one experiment with a structured trace attached
// and digests the complete execution: every trace event string in order,
// each process's final channel counters and engine state, the permanent
// checkpoint history, and the simulated event count. Two runs with equal
// fingerprints executed byte-identically, which makes the digest the
// equivalence oracle for engine-representation refactors: any change to
// message contents, checkpoint decisions, trace formatting, or state
// accessors shows up as a different fingerprint for the same seed.
func TraceFingerprint(cfg Config) (string, error) {
	cfg = cfg.defaults()
	tl := trace.New()
	cluster, err := runCluster(cfg, tl)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	for _, ev := range tl.Events() {
		io.WriteString(h, ev.String()) //nolint:errcheck
		h.Write([]byte{'\n'})          //nolint:errcheck
	}
	for p := 0; p < cluster.N(); p++ {
		proc := cluster.Proc(protocol.ProcessID(p))
		st := proc.CaptureState()
		fmt.Fprintf(h, "P%d sent=%v recv=%v\n", p, st.SentTo, st.RecvFrom)
		if eng, ok := proc.Engine().(engineState); ok {
			fmt.Fprintf(h, "csn=%v r=%v sent=%v old=%d\n",
				eng.CSN(), eng.DependencyVector(), eng.Sent(), eng.OldCSN())
		}
		for _, rec := range proc.Stable().History() {
			fmt.Fprintf(h, "perm csn=%d trig=%+v\n", rec.State.CSN, rec.Trigger)
		}
	}
	fmt.Fprintf(h, "events=%d", cluster.Sim().Executed())
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// engineState is the engine surface the fingerprint folds in. The []bool
// and []int forms are the stable cross-representation boundary: engines
// may store state however they like but must render it identically here.
type engineState interface {
	CSN() []int
	DependencyVector() []bool
	Sent() bool
	OldCSN() int
}
