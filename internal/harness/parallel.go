package harness

// Parallel experiment execution. Every sweep and figure in this package is
// a grid of fully independent (config, seed) simulation cells, so the
// run-plan layer here fans the cells out over a bounded worker pool and
// merges the per-cell results back in deterministic cell/seed order. The
// merge path is shared with the sequential runner, which makes the merged
// stats.Sample values (means, CIs, counters, consistency verdicts)
// bit-for-bit identical regardless of worker count or completion order.

import (
	"fmt"
	"runtime"
	"sync"
)

// Runner executes experiment grids with a fixed degree of parallelism.
// The zero value and a nil *Runner both run sequentially.
type Runner struct {
	workers int
}

// Parallel returns a Runner that fans independent simulation cells out
// over the given number of workers. workers <= 0 selects
// runtime.GOMAXPROCS(0), i.e. one worker per available CPU.
func Parallel(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers}
}

// Sequential returns a single-worker Runner. The package-level RunSeeds,
// Fig5, ScaleSweep, etc. are thin wrappers over it.
func Sequential() *Runner { return &Runner{workers: 1} }

// Workers reports the degree of parallelism.
func (r *Runner) Workers() int {
	if r == nil || r.workers < 1 {
		return 1
	}
	return r.workers
}

// RunJobs executes n independent jobs over a pool of workers and returns
// their results in index order. When any job fails, the error of the
// lowest-indexed failing job is returned — independent of completion
// order — so parallel and sequential runs fail identically. It is the
// fan-out primitive behind every grid in this package and is exported for
// other deterministic-merge consumers (internal/explore fans random-walk
// schedules over it).
func RunJobs[T any](workers, n int, job func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = job(i)
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
		return out, nil
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i], errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runGrid runs one simulation per (cell, seed) pair — cells*len(seeds)
// independent jobs — and merges each cell's per-seed results in seed
// order. configFor builds the cell's base config (its Seed field is
// overwritten); label names the cell in errors.
func (r *Runner) runGrid(cells int, seeds []uint64,
	configFor func(cell int) Config, label func(cell int) string) ([]*Result, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("harness: no seeds")
	}
	nS := len(seeds)
	flat, err := RunJobs(r.Workers(), cells*nS, func(i int) (*Result, error) {
		cfg := configFor(i / nS)
		cfg.Seed = seeds[i%nS]
		res, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: seed %d: %w", label(i/nS), cfg.Seed, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	merged := make([]*Result, cells)
	for c := 0; c < cells; c++ {
		merged[c] = mergeSeedResults(seeds, flat[c*nS:(c+1)*nS])
	}
	return merged, nil
}

// RunSeeds runs the experiment across several seeds — in parallel when the
// Runner has more than one worker — and merges the per-initiation samples,
// shrinking confidence intervals the way the paper's "large number of
// samples" does. Results are identical to the sequential path.
func (r *Runner) RunSeeds(cfg Config, seeds []uint64) (*Result, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("harness: no seeds")
	}
	results, err := RunJobs(r.Workers(), len(seeds), func(i int) (*Result, error) {
		c := cfg
		c.Seed = seeds[i]
		res, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("harness: seed %d: %w", seeds[i], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return mergeSeedResults(seeds, results), nil
}

// mergeSeedResults folds per-seed results into one, always walking in seed
// order so the merged samples do not depend on completion order. Errors
// recorded inside a Result are annotated with the seed that produced them:
// a consistency violation from seed k used to be indistinguishable from
// seed 0, and the first failing seed is kept deterministically.
func mergeSeedResults(seeds []uint64, results []*Result) *Result {
	var merged *Result
	for i, res := range results {
		seed := seeds[i]
		if res.ConsistencyErr != nil {
			res.ConsistencyErr = fmt.Errorf("seed %d: %w", seed, res.ConsistencyErr)
		}
		if res.DiskLineErr != nil {
			res.DiskLineErr = fmt.Errorf("seed %d: %w", seed, res.DiskLineErr)
		}
		if res.PayloadVerifyErr != nil {
			res.PayloadVerifyErr = fmt.Errorf("seed %d: %w", seed, res.PayloadVerifyErr)
		}
		for j, e := range res.ClusterErrors {
			res.ClusterErrors[j] = fmt.Errorf("seed %d: %w", seed, e)
		}
		if merged == nil {
			merged = res
			continue
		}
		merged.Initiations += res.Initiations
		merged.Tentative.Merge(&res.Tentative)
		merged.Mutable.Merge(&res.Mutable)
		merged.Redundant.Merge(&res.Redundant)
		merged.SysMsgs.Merge(&res.SysMsgs)
		merged.DurationSec.Merge(&res.DurationSec)
		merged.BlockedSec.Merge(&res.BlockedSec)
		merged.CompMsgs += res.CompMsgs
		merged.TotalSysMsgs += res.TotalSysMsgs
		merged.SimulatedEvents += res.SimulatedEvents
		merged.TotalStable += res.TotalStable
		merged.TotalMutableCk += res.TotalMutableCk
		merged.Intervals += res.Intervals
		merged.DozeWakeups += res.DozeWakeups
		merged.ConsistencyOK = merged.ConsistencyOK && res.ConsistencyOK
		if merged.ConsistencyErr == nil {
			merged.ConsistencyErr = res.ConsistencyErr
		}
		merged.DiskLineOK = merged.DiskLineOK && res.DiskLineOK
		if merged.DiskLineErr == nil {
			merged.DiskLineErr = res.DiskLineErr
		}
		merged.PayloadSaves += res.PayloadSaves
		merged.PayloadLogicalBytes += res.PayloadLogicalBytes
		merged.PayloadNewBytes += res.PayloadNewBytes
		merged.PayloadVerifyOK = merged.PayloadVerifyOK && res.PayloadVerifyOK
		if merged.PayloadVerifyErr == nil {
			merged.PayloadVerifyErr = res.PayloadVerifyErr
		}
		merged.ClusterErrors = append(merged.ClusterErrors, res.ClusterErrors...)
	}
	if merged.Tentative.Mean() > 0 {
		merged.RedundantRatio = merged.Redundant.Mean() / merged.Tentative.Mean()
	}
	if merged.PayloadLogicalBytes > 0 {
		merged.PayloadRatio = float64(merged.PayloadNewBytes) / float64(merged.PayloadLogicalBytes)
	}
	return merged
}
