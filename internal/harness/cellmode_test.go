package harness

import (
	"testing"
	"time"
)

// cellCfg is the shared shape for the parallel-kernel tests: four cells,
// enough processes per cell that instances routinely span cells.
func cellCfg(seed uint64, workers int) Config {
	return Config{
		Algorithm:   AlgoMutable,
		N:           32,
		Seed:        seed,
		Workload:    WorkloadP2P,
		Rate:        0.05,
		Horizon:     4 * 900 * time.Second,
		Cells:       4,
		CellWorkers: workers,
	}
}

// TestCellFingerprintWorkerInvariance is the parallel-kernel equivalence
// oracle: the sharded DES merges cross-cell posts at each window barrier
// in a total order independent of worker interleaving, so the final
// cluster state for any worker count must be byte-identical to the
// CellWorkers=1 reference execution of the same seed. Run under -race
// this also proves the window pool is data-race free.
func TestCellFingerprintWorkerInvariance(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		ref, err := StateFingerprint(cellCfg(seed, 1))
		if err != nil {
			t.Fatalf("seed %d workers=1: %v", seed, err)
		}
		for _, workers := range []int{2, 4} {
			got, err := StateFingerprint(cellCfg(seed, workers))
			if err != nil {
				t.Fatalf("seed %d workers=%d: %v", seed, workers, err)
			}
			if got != ref {
				t.Errorf("seed %d: workers=%d fingerprint %s, workers=1 reference %s — parallel kernel diverged",
					seed, workers, got, ref)
			}
		}
	}
	// The oracle must still separate genuinely different executions.
	a, err := StateFingerprint(cellCfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := StateFingerprint(cellCfg(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("different seeds produced equal fingerprints %s", a)
	}
}

// TestCellModeRun checks the sharded kernel end to end through the
// public harness entry point: the run terminates, instances commit, and
// the resulting permanent line passes the consistency checker.
func TestCellModeRun(t *testing.T) {
	cfg := cellCfg(1, 0) // CellWorkers=0: GOMAXPROCS
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConsistencyOK {
		t.Fatalf("permanent line inconsistent: %v", res.ConsistencyErr)
	}
	if res.Initiations == 0 {
		t.Fatal("no checkpoint instances completed in cell mode")
	}
	if res.ClusterErrors != nil {
		t.Fatalf("cluster errors: %v", res.ClusterErrors)
	}
}

// TestCellModeRejectsTrace pins the contract that tracing and the
// parallel kernel are mutually exclusive: there is no global event order
// for a sharded run, so asking for one must fail loudly, not silently
// interleave.
func TestCellModeRejectsTrace(t *testing.T) {
	cfg := cellCfg(1, 1)
	if _, err := TraceFingerprint(cfg); err == nil {
		t.Fatal("TraceFingerprint accepted a Cells>1 configuration")
	}
}

// TestActiveSubsetRun exercises the scale ladder's regime on a small
// instance: only the first Active processes generate load and schedule
// checkpoints, the rest are idle spectators in the dependency vectors.
func TestActiveSubsetRun(t *testing.T) {
	cfg := Config{
		Algorithm: AlgoMutable,
		N:         64,
		Seed:      3,
		Workload:  WorkloadP2P,
		Rate:      0.05,
		Horizon:   4 * 900 * time.Second,
		Active:    8,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConsistencyOK {
		t.Fatalf("permanent line inconsistent: %v", res.ConsistencyErr)
	}
	if res.Initiations == 0 {
		t.Fatal("no checkpoint instances completed with an active subset")
	}
}
