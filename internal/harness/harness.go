// Package harness runs the paper's experiments: it builds simulated
// clusters, drives the §5.1 workloads, collects per-initiation samples
// with 95% confidence intervals, and regenerates every figure and table of
// the evaluation section (see DESIGN.md §3 for the experiment index).
package harness

import (
	"fmt"
	"path/filepath"
	"time"

	"mutablecp/internal/algorithms/chandylamport"
	"mutablecp/internal/algorithms/elnozahy"
	"mutablecp/internal/algorithms/kootoueg"
	"mutablecp/internal/algorithms/logbased"
	"mutablecp/internal/algorithms/naive"
	"mutablecp/internal/checkpoint"
	"mutablecp/internal/chunkstore"
	"mutablecp/internal/consistency"
	"mutablecp/internal/core"
	"mutablecp/internal/protocol"
	"mutablecp/internal/recovery"
	"mutablecp/internal/simrt"
	"mutablecp/internal/stable"
	"mutablecp/internal/stats"
	"mutablecp/internal/trace"
	"mutablecp/internal/workload"
)

// Algorithm names accepted by Config.Algorithm.
const (
	AlgoMutable = "mutable"
	// AlgoMutableTargeted is the mutable algorithm with the §3.3.5
	// "update" commit dissemination instead of the broadcast.
	AlgoMutableTargeted = "mutable-targeted"
	AlgoKooToueg        = "koo-toueg"
	AlgoElnozahy        = "elnozahy"
	AlgoChandyLamport   = "chandy-lamport"
	AlgoNaiveSimple     = "naive-simple"
	AlgoNaiveRevised    = "naive-revised"
	AlgoNaiveNoCSN      = "naive-nocsn"
	// AlgoLogBased is independent checkpointing with sender-based message
	// logging: the fourth recovery family (replay only the failed process
	// from its own checkpoint plus its peers' logs). Its checkpoints are
	// deliberately uncoordinated, so the permanent "line" is not a
	// consistent cut and the end-of-run line check is skipped for it.
	AlgoLogBased = "log-based"
)

// Algorithms lists every registered algorithm name.
func Algorithms() []string {
	return []string{
		AlgoMutable, AlgoMutableTargeted, AlgoKooToueg, AlgoElnozahy,
		AlgoChandyLamport, AlgoNaiveSimple, AlgoNaiveRevised, AlgoNaiveNoCSN,
		AlgoLogBased,
	}
}

// NewEngine builds an engine factory for a registered algorithm name.
func NewEngine(name string) (func(env protocol.Env) protocol.Engine, error) {
	switch name {
	case AlgoMutable:
		return func(env protocol.Env) protocol.Engine { return core.New(env) }, nil
	case AlgoMutableTargeted:
		return func(env protocol.Env) protocol.Engine {
			return core.NewWithOptions(env, core.Options{Dissemination: core.CommitTargeted})
		}, nil
	case AlgoKooToueg:
		return func(env protocol.Env) protocol.Engine { return kootoueg.New(env) }, nil
	case AlgoElnozahy:
		return func(env protocol.Env) protocol.Engine { return elnozahy.New(env) }, nil
	case AlgoChandyLamport:
		return func(env protocol.Env) protocol.Engine { return chandylamport.New(env) }, nil
	case AlgoNaiveSimple:
		return func(env protocol.Env) protocol.Engine { return naive.New(env, naive.ModeSimple) }, nil
	case AlgoNaiveRevised:
		return func(env protocol.Env) protocol.Engine { return naive.New(env, naive.ModeRevised) }, nil
	case AlgoNaiveNoCSN:
		return func(env protocol.Env) protocol.Engine { return naive.New(env, naive.ModeNoCSN) }, nil
	case AlgoLogBased:
		return func(env protocol.Env) protocol.Engine { return logbased.New(env) }, nil
	default:
		return nil, fmt.Errorf("harness: unknown algorithm %q", name)
	}
}

// WorkloadKind selects the communication environment of §5.1.
type WorkloadKind int

// Workload kinds.
const (
	WorkloadP2P WorkloadKind = iota + 1
	WorkloadGroup
	// WorkloadClientServer is the asymmetric mobile traffic shape: a few
	// server processes (the lowest pids) answer requests from every
	// client, concentrating dependencies on the servers.
	WorkloadClientServer
)

// Config describes one experiment run.
type Config struct {
	Algorithm string
	N         int
	Seed      uint64

	Workload WorkloadKind
	// Rate is the per-process message sending rate (msgs/s); for group
	// workloads it is the intra-group rate.
	Rate float64
	// GroupRatio is the intra/inter rate ratio (group workloads only).
	GroupRatio float64
	// Groups is the number of groups (default 4).
	Groups int
	// Servers is the number of server processes (client-server workloads
	// only; default max(2, N/8)).
	Servers int

	// Horizon is the simulated time to run. Zero means enough for
	// MinInitiations completed instances (default 40 intervals).
	Horizon time.Duration
	// Interval overrides the per-process checkpoint interval (default the
	// paper's 900 s).
	Interval time.Duration
	// WarmupInitiations skips the first k completed instances (cold-start
	// csn state inflates the very first request tree).
	WarmupInitiations int

	// SkipConsistency disables the end-of-run recovery-line check (used
	// for the deliberately broken naive-nocsn ablation).
	SkipConsistency bool

	// DozeCount puts the last DozeCount processes into doze mode for the
	// whole run (they generate no traffic; arriving messages wake them at
	// an energy cost). Point-to-point workloads only.
	DozeCount int

	// Active, when positive, restricts the workload and the checkpoint
	// timers to the first Active processes; the other N-Active processes
	// exist (dependency vectors, recovery line) but stay idle. This is
	// the scale ladder's regime: the paper's min-process premise is that
	// instances touch a small participant set regardless of system size.
	// Point-to-point workloads only; mutually exclusive with DozeCount.
	Active int

	// Cells, when > 1, runs the simulation on the conservative parallel
	// kernel: processes are placed round-robin into Cells cells, each on
	// its own DES shard (simrt.Config.Cells). Implies the sharded
	// cellular topology instead of the shared LAN.
	Cells int
	// CellWorkers bounds shard concurrency (0 = GOMAXPROCS, 1 = the
	// sequential reference execution of the sharded model).
	CellWorkers int

	// StoreDir, when non-empty, backs every process's stable store with
	// the durable internal/stable log under this directory (one
	// subdirectory per process) instead of the in-memory store. After the
	// run the recovery line is additionally reconstructed from disk and
	// validated; the verdict lands in Result.DiskLineOK. Each seed writes
	// under its own seed-<n> subdirectory, so one StoreDir serves a whole
	// RunSeeds sweep without collisions. The directory must be private to
	// this experiment.
	StoreDir string

	// PayloadBytes, when positive, attaches the checkpoint payload plane:
	// each process carries a synthetic image of this size, stepped by
	// PayloadProfile at every checkpoint and stored into a
	// content-addressed chunk store whose save/commit/drop lifecycle
	// shadows the control plane. The stable transfer is then charged the
	// deduplicated incremental bytes instead of the fixed 512 KB.
	// Single-kernel runs only (not with Cells > 1).
	PayloadBytes int
	// PayloadChunkBytes is the chunking granularity (default 4 KiB); it
	// doubles as the image source's page size so dedup accounting is
	// exact.
	PayloadChunkBytes int
	// PayloadProfile selects how images mutate between checkpoints
	// (uniform, skewed-dirty-page, or append-only).
	PayloadProfile workload.ImageProfile
	// PayloadMode selects full, incremental, or delta payload storage.
	PayloadMode chunkstore.Mode
	// PayloadStripe, when > 1, stripes the payload across that many MSS
	// chunk stores with PayloadReplicas copies of every chunk (default 2,
	// so a crashed MSS never holds the only copy).
	PayloadStripe   int
	PayloadReplicas int
	// PayloadDir, when non-empty, puts the chunk segments on the real
	// filesystem under per-seed subdirectories; empty keeps them on an
	// in-memory errfs.
	PayloadDir string
}

func (c Config) defaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = AlgoMutable
	}
	if c.N == 0 {
		c.N = 16
	}
	if c.Workload == 0 {
		c.Workload = WorkloadP2P
	}
	if c.GroupRatio == 0 {
		c.GroupRatio = 1000
	}
	if c.Groups == 0 {
		c.Groups = 4
	}
	if c.Servers == 0 {
		c.Servers = c.N / 8
		if c.Servers < 2 {
			c.Servers = 2
		}
	}
	if c.Interval == 0 {
		c.Interval = 900 * time.Second
	}
	if c.Horizon == 0 {
		c.Horizon = 40 * c.Interval
	}
	if c.WarmupInitiations == 0 {
		c.WarmupInitiations = 1
	}
	if c.PayloadBytes > 0 {
		if c.PayloadChunkBytes == 0 {
			c.PayloadChunkBytes = 4 << 10
		}
		if c.PayloadStripe > 1 && c.PayloadReplicas == 0 {
			c.PayloadReplicas = 2
		}
	}
	return c
}

// Result aggregates one experiment run. Every Sample is per completed
// initiation.
type Result struct {
	Config      Config
	Initiations int

	Tentative       stats.Sample // stable checkpoints per initiation
	Mutable         stats.Sample // mutable checkpoints taken per initiation
	Redundant       stats.Sample // redundant (discarded) mutable checkpoints
	SysMsgs         stats.Sample // system messages per initiation
	DurationSec     stats.Sample // checkpointing time T_ch (seconds)
	BlockedSec      stats.Sample // total computation blocking (seconds)
	RedundantRatio  float64      // mean redundant / mean tentative
	ConsistencyOK   bool
	ConsistencyErr  error
	ClusterErrors   []error
	CompMsgs        uint64
	TotalSysMsgs    uint64
	SimulatedEvents uint64

	// Global checkpoint totals over the whole run (robust even when an
	// instance never terminates, as the naive avalanche schemes can).
	TotalStable    uint64
	TotalMutableCk uint64
	Intervals      float64 // run length in checkpoint intervals

	// DozeWakeups counts messages that awakened dozing hosts (energy
	// cost; only meaningful with Config.DozeCount > 0).
	DozeWakeups uint64

	// DiskLineOK reports whether the recovery line reconstructed from the
	// on-disk stores after the run matches the live permanent line and
	// passes the orphan check. Always true for in-memory runs (no disk to
	// disagree with).
	DiskLineOK  bool
	DiskLineErr error

	// Payload-plane results (Config.PayloadBytes > 0 only).
	// PayloadRatio = new/logical bytes: what fraction of the naive full
	// transfer the content-addressed store actually moved.
	PayloadSaves        uint64
	PayloadLogicalBytes uint64
	PayloadNewBytes     uint64
	PayloadRatio        float64
	// PayloadVerifyOK is the end-of-run payload audit: every retained
	// manifest resolves to intact chunks and the newest permanent image
	// of every process materializes. True (vacuously) without a payload
	// plane.
	PayloadVerifyOK  bool
	PayloadVerifyErr error
	PayloadStats     chunkstore.Stats
}

// newGenerator builds the workload generator for one experiment config.
func newGenerator(cfg Config) (workload.Generator, error) {
	switch cfg.Workload {
	case WorkloadP2P:
		active := 0
		if cfg.DozeCount > 0 {
			if cfg.DozeCount >= cfg.N-1 {
				return nil, fmt.Errorf("harness: DozeCount %d leaves no active pair", cfg.DozeCount)
			}
			active = cfg.N - cfg.DozeCount
		}
		if cfg.Active > 0 {
			if cfg.DozeCount > 0 {
				return nil, fmt.Errorf("harness: Active and DozeCount are mutually exclusive")
			}
			if cfg.Active < 2 || cfg.Active > cfg.N {
				return nil, fmt.Errorf("harness: Active %d out of range for N=%d", cfg.Active, cfg.N)
			}
			active = cfg.Active
		}
		return &workload.PointToPoint{Rate: cfg.Rate, Active: active}, nil
	case WorkloadGroup:
		return &workload.Group{Groups: cfg.Groups, IntraRate: cfg.Rate, InterRatio: cfg.GroupRatio}, nil
	case WorkloadClientServer:
		return &workload.ClientServer{Servers: cfg.Servers, Rate: cfg.Rate}, nil
	default:
		return nil, fmt.Errorf("harness: unknown workload kind %d", cfg.Workload)
	}
}

// runCluster builds one simulated cluster for cfg (optionally with a
// structured trace attached), drives the workload over the horizon, and
// drains it. Callers read metrics, state, or the trace off the returned
// cluster.
func runCluster(cfg Config, tl *trace.Log) (*simrt.Cluster, *payloadRun, error) {
	factory, err := NewEngine(cfg.Algorithm)
	if err != nil {
		return nil, nil, err
	}
	simCfg := simrt.Config{
		N:                   cfg.N,
		Seed:                cfg.Seed,
		NewEngine:           factory,
		CheckpointInterval:  cfg.Interval,
		ScheduleCheckpoints: true,
		SingleInitiation:    true,
		ScheduledProcs:      cfg.Active,
		Cells:               cfg.Cells,
		CellWorkers:         cfg.CellWorkers,
		Trace:               tl,
	}
	storeOpts := stable.Options{Keep: 1}
	if cfg.StoreDir != "" {
		dir := storeSeedDir(cfg.StoreDir, cfg.Seed)
		simCfg.NewStore = func(pid protocol.ProcessID, n int) (checkpoint.Store, error) {
			return stable.Open(stable.ProcDir(dir, pid), pid, n, storeOpts)
		}
	}
	pr, err := newPayloadRun(cfg)
	if err != nil {
		return nil, nil, err
	}
	pr.wire(&simCfg, cfg)
	cluster, err := simrt.New(simCfg)
	if err != nil {
		pr.close()
		return nil, nil, err
	}

	gen, err := newGenerator(cfg)
	if err != nil {
		pr.close()
		return nil, nil, err
	}
	gen.Install(cluster)
	for i := cfg.N - cfg.DozeCount; cfg.DozeCount > 0 && i < cfg.N; i++ {
		cluster.Proc(i).Doze()
	}
	cluster.Start()

	if err := cluster.Run(cfg.Horizon); err != nil {
		pr.close()
		return nil, nil, fmt.Errorf("harness: run: %w", err)
	}
	gen.Stop()
	cluster.StopTimers()
	if err := cluster.Drain(); err != nil {
		pr.close()
		return nil, nil, fmt.Errorf("harness: drain: %w", err)
	}
	return cluster, pr, nil
}

// Run executes one experiment.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.defaults()
	cluster, pr, err := runCluster(cfg, nil)
	if err != nil {
		return nil, err
	}

	// Metrics() re-merges per-cell collectors on every call in cell
	// mode, so take the snapshot once.
	met := cluster.Metrics()
	res := &Result{
		Config:          cfg,
		ConsistencyOK:   true,
		PayloadVerifyOK: true,
		ClusterErrors:   cluster.Errors(),
		CompMsgs:        met.CompMsgs,
		TotalSysMsgs:    met.SysMsgs,
		SimulatedEvents: cluster.Executed(),
		TotalStable:     met.TotalTentative,
		TotalMutableCk:  met.TotalMutable,
		Intervals:       float64(cfg.Horizon) / float64(cfg.Interval),
	}
	for i := cfg.N - cfg.DozeCount; cfg.DozeCount > 0 && i < cfg.N; i++ {
		res.DozeWakeups += cluster.Proc(i).Wakeups()
	}
	completed := met.Completed()
	for i, rec := range completed {
		if i < cfg.WarmupInitiations {
			continue
		}
		res.Initiations++
		res.Tentative.Add(float64(rec.Tentative))
		res.Mutable.Add(float64(rec.Mutable))
		res.Redundant.Add(float64(rec.Discarded))
		res.SysMsgs.Add(float64(rec.SysMsgs))
		res.DurationSec.Add(rec.Duration().Seconds())
		res.BlockedSec.Add(rec.BlockedTime.Seconds())
	}
	if res.Tentative.Mean() > 0 {
		res.RedundantRatio = res.Redundant.Mean() / res.Tentative.Mean()
	}
	if !cfg.SkipConsistency && cfg.Algorithm != AlgoLogBased {
		// Log-based checkpoints are independent: the newest-permanent cut
		// is not a consistent line by design (recovery replays the logs
		// instead), so the line check does not apply.
		if err := consistency.Check(cluster.PermanentLine()); err != nil {
			res.ConsistencyOK = false
			res.ConsistencyErr = err
		}
	}
	res.DiskLineOK = true
	if cfg.StoreDir != "" {
		res.DiskLineErr = checkDiskLine(cluster, storeSeedDir(cfg.StoreDir, cfg.Seed), stable.Options{Keep: 1})
		res.DiskLineOK = res.DiskLineErr == nil
	}
	res.PayloadSaves = met.PayloadSaves
	res.PayloadLogicalBytes = met.PayloadLogicalBytes
	res.PayloadNewBytes = met.PayloadNewBytes
	if res.PayloadLogicalBytes > 0 {
		res.PayloadRatio = float64(res.PayloadNewBytes) / float64(res.PayloadLogicalBytes)
	}
	pr.finish(res, cfg.N)
	return res, nil
}

// storeSeedDir is the per-seed subdirectory of a durable store root: seeds
// of one sweep run concurrently and must never share a segment log.
func storeSeedDir(root string, seed uint64) string {
	return filepath.Join(root, fmt.Sprintf("seed-%d", seed))
}

// checkDiskLine closes the durable stores, reconstructs the recovery line
// from the directory alone (a simulated MSS restart), and verifies it
// matches the live permanent line the cluster ended with.
func checkDiskLine(cluster *simrt.Cluster, dir string, opts stable.Options) error {
	live := cluster.PermanentLine()
	if err := cluster.RestartStores(); err != nil {
		return err
	}
	line, err := recovery.OpenLine(dir, cluster.N(), opts)
	if err != nil {
		return err
	}
	for p := 0; p < cluster.N(); p++ {
		got := line.Checkpoints[p].State
		want := live[p]
		if got.CSN != want.CSN {
			return fmt.Errorf("harness: P%d on-disk permanent CSN %d, live %d", p, got.CSN, want.CSN)
		}
		// Counters may be stored truncated; compare through the accessor
		// so a truncated vector equals its zero-padded form.
		for j := 0; j < cluster.N(); j++ {
			if protocol.CounterAt(got.SentTo, j) != protocol.CounterAt(want.SentTo, j) ||
				protocol.CounterAt(got.RecvFrom, j) != protocol.CounterAt(want.RecvFrom, j) {
				return fmt.Errorf("harness: P%d on-disk checkpoint counters differ from live line", p)
			}
		}
	}
	return nil
}

// RunSeeds runs the experiment across several seeds and merges the
// per-initiation samples, shrinking confidence intervals the way the
// paper's "large number of samples" does. It is the sequential form of
// Runner.RunSeeds; Parallel(n).RunSeeds produces identical results.
func RunSeeds(cfg Config, seeds []uint64) (*Result, error) {
	return Sequential().RunSeeds(cfg, seeds)
}
