package harness_test

import (
	"testing"

	"mutablecp/internal/harness"
)

func TestQuickAll(t *testing.T) {
	for _, algo := range harness.Algorithms() {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			res, err := harness.Run(harness.Config{
				Algorithm:       algo,
				Rate:            0.05,
				Horizon:         harness.ShortHorizon,
				Seed:            7,
				SkipConsistency: algo == harness.AlgoNaiveNoCSN,
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, e := range res.ClusterErrors {
				t.Errorf("cluster err: %v", e)
			}
			if !res.ConsistencyOK {
				t.Errorf("inconsistent: %v", res.ConsistencyErr)
			}
			t.Logf("inits=%d tent=%.2f mut=%.2f red=%.2f sys=%.1f dur=%.2fs blocked=%.2fs",
				res.Initiations, res.Tentative.Mean(), res.Mutable.Mean(), res.Redundant.Mean(),
				res.SysMsgs.Mean(), res.DurationSec.Mean(), res.BlockedSec.Mean())
		})
	}
}
