package harness

import (
	"fmt"
	"strings"
	"time"
)

// DefaultRates is the sending-rate sweep (msgs/s per process) used for
// Fig. 5 and Fig. 6. The range covers the regime where the initiator's
// transitive dependency set grows from nearly empty to all N−1 processes
// over a 900-second checkpoint interval.
var DefaultRates = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}

// FigRow is one x-axis point of Fig. 5 or Fig. 6.
type FigRow struct {
	Rate          float64
	Tentative     float64
	TentativeCI   float64
	Redundant     float64
	RedundantCI   float64
	RedundantPct  float64 // redundant as % of tentative
	Initiations   int
	ConsistencyOK bool
}

// FigSeries is a full figure: one row per swept rate.
type FigSeries struct {
	Title string
	Rows  []FigRow
}

// Fig5 regenerates Fig. 5: tentative and redundant mutable checkpoints per
// initiation vs. message sending rate, point-to-point communication.
func Fig5(seeds []uint64, rates []float64) (*FigSeries, error) {
	return Sequential().Fig5(seeds, rates)
}

// Fig5 is the parallel form of the package-level Fig5: every (rate, seed)
// cell is an independent simulation fanned out over the Runner's pool.
func (r *Runner) Fig5(seeds []uint64, rates []float64) (*FigSeries, error) {
	return r.figure("Fig. 5: point-to-point communication", Config{
		Algorithm: AlgoMutable,
		Workload:  WorkloadP2P,
	}, seeds, rates)
}

// Fig6 regenerates one panel of Fig. 6: the group-communication
// environment with the given intra/inter rate ratio (paper: 1000 left,
// 10000 right).
func Fig6(ratio float64, seeds []uint64, rates []float64) (*FigSeries, error) {
	return Sequential().Fig6(ratio, seeds, rates)
}

// Fig6 is the parallel form of the package-level Fig6.
func (r *Runner) Fig6(ratio float64, seeds []uint64, rates []float64) (*FigSeries, error) {
	return r.figure(
		fmt.Sprintf("Fig. 6: group communication (intra/inter ratio %g)", ratio),
		Config{
			Algorithm:  AlgoMutable,
			Workload:   WorkloadGroup,
			GroupRatio: ratio,
		}, seeds, rates)
}

func (r *Runner) figure(title string, base Config, seeds []uint64, rates []float64) (*FigSeries, error) {
	if len(rates) == 0 {
		rates = DefaultRates
	}
	merged, err := r.runGrid(len(rates), seeds,
		func(cell int) Config {
			cfg := base
			cfg.Rate = rates[cell]
			return cfg
		},
		func(cell int) string { return fmt.Sprintf("rate %g", rates[cell]) })
	if err != nil {
		return nil, err
	}
	series := &FigSeries{Title: title}
	for i, res := range merged {
		row := FigRow{
			Rate:          rates[i],
			Tentative:     res.Tentative.Mean(),
			TentativeCI:   res.Tentative.CI95(),
			Redundant:     res.Redundant.Mean(),
			RedundantCI:   res.Redundant.CI95(),
			Initiations:   res.Initiations,
			ConsistencyOK: res.ConsistencyOK,
		}
		if row.Tentative > 0 {
			row.RedundantPct = 100 * row.Redundant / row.Tentative
		}
		series.Rows = append(series.Rows, row)
	}
	return series, nil
}

// Format renders the series as an aligned text table.
func (s *FigSeries) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Title)
	fmt.Fprintf(&b, "%-10s %-22s %-26s %-8s %-6s\n",
		"rate", "tentative ckpts/init", "redundant mutable/init", "red-%", "inits")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-10g %8.3f ± %-11.3f %10.4f ± %-13.4f %6.2f%% %6d\n",
			r.Rate, r.Tentative, r.TentativeCI, r.Redundant, r.RedundantCI, r.RedundantPct, r.Initiations)
	}
	return b.String()
}

// Table1Row is one algorithm's empirically measured line of Table 1,
// paired with the paper's analytic formula.
type Table1Row struct {
	Algorithm    string
	Checkpoints  float64 // stable checkpoints per initiation
	BlockingSec  float64 // mean total blocking time per initiation (s)
	OutputCommit float64 // mean output-commit delay T_ch (s)
	SysMsgs      float64 // system messages per initiation
	Distributed  bool
	Formula      string // the paper's analytic entry
}

// Table1 regenerates Table 1 empirically: the three algorithms under an
// identical workload and seed set.
func Table1(rate float64, seeds []uint64) ([]Table1Row, error) {
	return Sequential().Table1(rate, seeds)
}

// Table1 is the parallel form of the package-level Table1: each
// (algorithm, seed) cell runs as an independent simulation.
func (r *Runner) Table1(rate float64, seeds []uint64) ([]Table1Row, error) {
	entries := []struct {
		algo        string
		distributed bool
		formula     string
	}{
		{AlgoKooToueg, true, "Nmin ckpts; Nmin*Tch blocking; 3*Nmin*Ndep*Cair msgs"},
		{AlgoElnozahy, false, "N ckpts; 0 blocking; 2*Cbroad + N*Cair msgs"},
		{AlgoMutable, true, "Nmin ckpts; 0 blocking; ~2*Nmin*Cair + min(Nmin*Cair, Cbroad) msgs"},
	}
	merged, err := r.runGrid(len(entries), seeds,
		func(cell int) Config {
			return Config{
				Algorithm: entries[cell].algo,
				Workload:  WorkloadP2P,
				Rate:      rate,
			}
		},
		func(cell int) string { return entries[cell].algo })
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, len(entries))
	for i, res := range merged {
		e := entries[i]
		if !res.ConsistencyOK {
			return nil, fmt.Errorf("%s: inconsistent recovery line: %v", e.algo, res.ConsistencyErr)
		}
		rows = append(rows, Table1Row{
			Algorithm:    e.algo,
			Checkpoints:  res.Tentative.Mean(),
			BlockingSec:  res.BlockedSec.Mean(),
			OutputCommit: res.DurationSec.Mean(),
			SysMsgs:      res.SysMsgs.Mean(),
			Distributed:  e.distributed,
			Formula:      e.formula,
		})
	}
	return rows, nil
}

// FormatTable1 renders Table 1 rows as an aligned text table.
func FormatTable1(rate float64, rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 (measured at rate %g msg/s/process, N=16)\n", rate)
	fmt.Fprintf(&b, "%-15s %-12s %-14s %-18s %-10s %-12s\n",
		"algorithm", "ckpts/init", "blocking (s)", "output commit (s)", "msgs/init", "distributed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %-12.2f %-14.2f %-18.2f %-10.1f %-12v\n",
			r.Algorithm, r.Checkpoints, r.BlockingSec, r.OutputCommit, r.SysMsgs, r.Distributed)
	}
	b.WriteString("paper formulas:\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-15s %s\n", r.Algorithm, r.Formula)
	}
	return b.String()
}

// AblationRow compares checkpoint activity between the mutable scheme and
// the §3.1.1 strawmen at one sending rate (experiment E9). Because the
// avalanche can saturate the wireless medium and prevent instances from
// terminating at all, the metric is stable checkpoints per 900-second
// checkpoint interval, computed from run-wide totals.
type AblationRow struct {
	Algorithm         string
	StablePerInterval float64 // stable-storage checkpoints per interval
	MutablePerInt     float64 // mutable (cheap) checkpoints per interval
	SysMsgsTotal      uint64
}

// Ablation runs the avalanche ablation: the naive simple and revised
// schemes take stable checkpoints where the paper's algorithm takes cheap
// mutable ones (or none).
func Ablation(rate float64, seeds []uint64) ([]AblationRow, error) {
	return Sequential().Ablation(rate, seeds)
}

// Ablation is the parallel form of the package-level Ablation.
func (r *Runner) Ablation(rate float64, seeds []uint64) ([]AblationRow, error) {
	algos := []string{AlgoNaiveSimple, AlgoNaiveRevised, AlgoMutable}
	merged, err := r.runGrid(len(algos), seeds,
		func(cell int) Config {
			return Config{
				Algorithm:       algos[cell],
				Workload:        WorkloadP2P,
				Rate:            rate,
				Horizon:         10 * 900 * time.Second,
				SkipConsistency: algos[cell] != AlgoMutable,
			}
		},
		func(cell int) string { return algos[cell] })
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, 0, len(algos))
	for i, res := range merged {
		rows = append(rows, AblationRow{
			Algorithm:         algos[i],
			StablePerInterval: float64(res.TotalStable) / res.Intervals,
			MutablePerInt:     float64(res.TotalMutableCk) / res.Intervals,
			SysMsgsTotal:      res.TotalSysMsgs,
		})
	}
	return rows, nil
}

// FormatAblation renders ablation rows.
func FormatAblation(rate float64, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Avalanche ablation (rate %g msg/s/process, N=16)\n", rate)
	fmt.Fprintf(&b, "%-15s %-22s %-22s %-12s\n",
		"scheme", "stable ckpts/interval", "mutable ckpts/interval", "sys msgs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %-22.2f %-22.2f %-12d\n",
			r.Algorithm, r.StablePerInterval, r.MutablePerInt, r.SysMsgsTotal)
	}
	return b.String()
}

// QuickSeeds returns k deterministic seeds for experiment sweeps.
func QuickSeeds(k int) []uint64 {
	seeds := make([]uint64, k)
	for i := range seeds {
		seeds[i] = uint64(1000 + 7919*i)
	}
	return seeds
}

// ShortHorizon is a reduced horizon for fast tests (10 checkpoint
// intervals).
const ShortHorizon = 10 * 900 * time.Second

// FanoutRow compares the §3.3.5 commit-dissemination approaches at one
// doze configuration: system messages per initiation and wakeups of
// dozing hosts per initiation.
type FanoutRow struct {
	Algorithm       string
	SysMsgsPerInit  float64
	WakeupsPerInit  float64
	TentativePerI   float64
	InitiationCount int
}

// CommitFanout runs the §3.3.5 ablation: broadcast commits wake every
// dozing host on every initiation; the targeted update approach spends
// more point-to-point messages but leaves uninvolved dozing hosts asleep.
func CommitFanout(rate float64, dozing int, seeds []uint64) ([]FanoutRow, error) {
	return Sequential().CommitFanout(rate, dozing, seeds)
}

// CommitFanout is the parallel form of the package-level CommitFanout.
func (r *Runner) CommitFanout(rate float64, dozing int, seeds []uint64) ([]FanoutRow, error) {
	algos := []string{AlgoMutable, AlgoMutableTargeted}
	merged, err := r.runGrid(len(algos), seeds,
		func(cell int) Config {
			return Config{
				Algorithm: algos[cell],
				Workload:  WorkloadP2P,
				Rate:      rate,
				DozeCount: dozing,
				Horizon:   20 * 900 * time.Second,
			}
		},
		func(cell int) string { return algos[cell] })
	if err != nil {
		return nil, err
	}
	rows := make([]FanoutRow, 0, len(algos))
	for i, res := range merged {
		algo := algos[i]
		if !res.ConsistencyOK {
			return nil, fmt.Errorf("%s: %v", algo, res.ConsistencyErr)
		}
		inits := float64(res.Initiations)
		if inits == 0 {
			return nil, fmt.Errorf("%s: no initiations", algo)
		}
		rows = append(rows, FanoutRow{
			Algorithm:       algo,
			SysMsgsPerInit:  res.SysMsgs.Mean(),
			WakeupsPerInit:  float64(res.DozeWakeups) / inits,
			TentativePerI:   res.Tentative.Mean(),
			InitiationCount: res.Initiations,
		})
	}
	return rows, nil
}

// FormatFanout renders the commit-dissemination ablation.
func FormatFanout(rate float64, dozing int, rows []FanoutRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Commit dissemination (§3.3.5): rate %g msg/s, %d of 16 hosts dozing\n", rate, dozing)
	fmt.Fprintf(&b, "%-18s %-14s %-22s %-14s\n",
		"dissemination", "msgs/init", "doze wakeups/init", "ckpts/init")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-14.1f %-22.2f %-14.2f\n",
			r.Algorithm, r.SysMsgsPerInit, r.WakeupsPerInit, r.TentativePerI)
	}
	return b.String()
}
