package harness

// Executed-recovery experiments (E21): seed crashes into a live run,
// recover through internal/recovery's executor, and compare the four
// recovery families of the evaluation — blocking coordinated (koo-toueg),
// all-process coordinated (elnozahy), mutable (the paper's algorithm), and
// log-based (independent checkpoints + sender-based message logging).
// The axes are the classic trade-off: coordinated schemes pay system
// messages on every checkpoint but recover by pure rollback; the
// log-based scheme checkpoints for free but pays log growth and replay,
// and rolls back nobody but the victim.

import (
	"fmt"
	"strings"
	"time"

	"mutablecp/internal/consistency"
	"mutablecp/internal/protocol"
	"mutablecp/internal/recovery"
	"mutablecp/internal/simrt"
	"mutablecp/internal/workload"
)

// RecoveryModeFor maps an algorithm family to its recovery strategy:
// log-based replays from the logs, everything else rolls back to the
// newest committed line.
func RecoveryModeFor(algorithm string) recovery.Mode {
	if algorithm == AlgoLogBased {
		return recovery.ModeLog
	}
	return recovery.ModeRollback
}

// RecoveryConfig describes one crash-and-recover experiment run.
type RecoveryConfig struct {
	Algorithm string
	N         int
	Seed      uint64
	// Rate is the per-process message rate (msgs/s), point-to-point.
	Rate float64
	// Interval is the checkpoint interval (default 120 s — shorter than
	// the paper's 900 s so a bounded horizon sees several lines).
	Interval time.Duration
	// Horizon is the simulated run length (default 20 intervals).
	Horizon time.Duration
	// Failures is the number of seeded crashes, evenly spaced over the
	// horizon with rotating victims (default 1; 0 measures the
	// failure-free baseline).
	Failures int
	// CrashAt, when positive, pins the crash to this instant instead of
	// the even spacing. Requires Failures == 1 (an explicit instant and a
	// spaced schedule contradict each other).
	CrashAt time.Duration
	// RestartAfter is each victim's down window (default 30 s).
	RestartAfter time.Duration
	// Mutation seeds a recovery-path bug (internal/explore's oracle
	// fodder); leave zero for the correct executor.
	Mutation recovery.Mutation
}

func (c RecoveryConfig) defaults() RecoveryConfig {
	if c.Algorithm == "" {
		c.Algorithm = AlgoMutable
	}
	if c.N == 0 {
		c.N = 8
	}
	if c.Rate == 0 {
		c.Rate = 1
	}
	if c.Interval == 0 {
		c.Interval = 120 * time.Second
	}
	if c.Horizon == 0 {
		c.Horizon = 20 * c.Interval
	}
	if c.RestartAfter == 0 {
		c.RestartAfter = 30 * time.Second
	}
	return c
}

// crashPlans spaces cfg.Failures crashes evenly over the horizon with
// rotating victims. The spacing must exceed the down window: overlapping
// outages would ask the executor to roll back a process that is itself
// down.
func (c RecoveryConfig) crashPlans() ([]simrt.CrashPlan, error) {
	if c.Failures < 0 {
		return nil, fmt.Errorf("harness: negative failure count %d", c.Failures)
	}
	if c.Failures == 0 {
		if c.CrashAt > 0 {
			return nil, fmt.Errorf("harness: CrashAt %v set on a failure-free run", c.CrashAt)
		}
		return nil, nil
	}
	if c.CrashAt > 0 {
		if c.Failures != 1 {
			return nil, fmt.Errorf("harness: CrashAt pins a single crash, got %d failures", c.Failures)
		}
		if c.CrashAt+c.RestartAfter+c.Interval > c.Horizon {
			return nil, fmt.Errorf("harness: crash at %v + %v down window leaves the resumed run less than one %v checkpoint interval before the horizon (%v)",
				c.CrashAt, c.RestartAfter, c.Interval, c.Horizon)
		}
		return []simrt.CrashPlan{{Proc: 0, At: c.CrashAt, RestartAfter: c.RestartAfter}}, nil
	}
	spacing := c.Horizon / time.Duration(c.Failures+1)
	if spacing <= c.RestartAfter {
		return nil, fmt.Errorf("harness: %d failures over %v leave %v between crashes, not above the %v down window",
			c.Failures, c.Horizon, spacing, c.RestartAfter)
	}
	plans := make([]simrt.CrashPlan, 0, c.Failures)
	for i := 0; i < c.Failures; i++ {
		plans = append(plans, simrt.CrashPlan{
			Proc:         protocol.ProcessID(i % c.N),
			At:           time.Duration(i+1) * spacing,
			RestartAfter: c.RestartAfter,
		})
	}
	return plans, nil
}

// RecoveryResult aggregates one crash-and-recover run.
type RecoveryResult struct {
	Config RecoveryConfig
	Mode   recovery.Mode
	// Reports holds one executor report per recovered crash, in order.
	Reports []*recovery.Report

	Crashes       uint64
	Restarts      uint64
	RecoveryTime  time.Duration // summed victim down-to-live time
	PeerRollbacks uint64
	Replayed      uint64
	Deduped       uint64

	// PostRecoveryOK is the orphan/duplicate check on the live states,
	// taken synchronously inside each recovery event (before new traffic
	// can mask a violation). False if any recovery left the cluster
	// inconsistent.
	PostRecoveryOK  bool
	PostRecoveryErr error

	// NewCommits counts instances committed after the last restart: the
	// resumed computation must make checkpointing progress.
	NewCommits int

	// SysMsgsPerInit is the failure-free overhead axis: checkpointing
	// system messages per completed initiation.
	SysMsgsPerInit float64
	// LoggedMsgs is the log-based family's overhead axis: sender-log
	// entries accumulated over the run (0 unless message logging is on).
	LoggedMsgs uint64

	Initiations   int
	ClusterErrors []error
}

// RunRecovery executes one crash-and-recover experiment.
func RunRecovery(cfg RecoveryConfig) (*RecoveryResult, error) {
	cfg = cfg.defaults()
	factory, err := NewEngine(cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	plans, err := cfg.crashPlans()
	if err != nil {
		return nil, err
	}
	mode := RecoveryModeFor(cfg.Algorithm)
	cluster, err := simrt.New(simrt.Config{
		N:                   cfg.N,
		Seed:                cfg.Seed,
		NewEngine:           factory,
		CheckpointInterval:  cfg.Interval,
		ScheduleCheckpoints: true,
		SingleInitiation:    true,
		MessageLogging:      mode == recovery.ModeLog,
	})
	if err != nil {
		return nil, err
	}
	exec, err := recovery.NewExecutor(cluster, recovery.ExecOptions{Mode: mode, Mutation: cfg.Mutation})
	if err != nil {
		return nil, err
	}
	res := &RecoveryResult{Config: cfg, Mode: mode, PostRecoveryOK: true}
	hook := func(pid protocol.ProcessID) error {
		rep, err := exec.Recover(pid)
		if err != nil {
			return err
		}
		res.Reports = append(res.Reports, rep)
		if err := consistency.Check(cluster.States()); err != nil && res.PostRecoveryOK {
			res.PostRecoveryOK = false
			res.PostRecoveryErr = err
		}
		return nil
	}
	if len(plans) > 0 {
		if err := cluster.InstallCrashes(plans, hook); err != nil {
			return nil, err
		}
	}
	gen := &workload.PointToPoint{Rate: cfg.Rate}
	gen.Install(cluster)
	cluster.Start()
	if err := cluster.Run(cfg.Horizon); err != nil {
		return nil, fmt.Errorf("harness: recovery run: %w", err)
	}
	gen.Stop()
	cluster.StopTimers()
	if err := cluster.Drain(); err != nil {
		return nil, fmt.Errorf("harness: recovery drain: %w", err)
	}

	met := cluster.Metrics()
	res.Crashes = met.Crashes
	res.Restarts = met.Restarts
	res.RecoveryTime = met.RecoveryTime
	res.PeerRollbacks = met.PeerRollbacks
	res.Replayed = met.ReplayedMessages
	res.Deduped = met.DedupedReplays
	res.ClusterErrors = cluster.Errors()

	var lastRestart time.Duration
	for _, p := range plans {
		if end := p.At + p.RestartAfter; end > lastRestart {
			lastRestart = end
		}
	}
	for _, rec := range met.Completed() {
		if !rec.Committed {
			continue
		}
		res.Initiations++
		if rec.Start > lastRestart {
			res.NewCommits++
		}
	}
	if res.Initiations > 0 {
		res.SysMsgsPerInit = float64(met.SysMsgs) / float64(res.Initiations)
	}
	if mode == recovery.ModeLog {
		for p := 0; p < cfg.N; p++ {
			for q := 0; q < cfg.N; q++ {
				if p != q {
					res.LoggedMsgs += cluster.Proc(p).LoggedSends(protocol.ProcessID(q))
				}
			}
		}
	}
	return res, nil
}

// RecoveryFamilies is the Table-1-style four-family comparison set.
func RecoveryFamilies() []string {
	return []string{AlgoKooToueg, AlgoElnozahy, AlgoMutable, AlgoLogBased}
}

// RecoveryRow is one point of the failure-rate sweep, averaged over
// seeds: an algorithm family at a seeded failure count.
type RecoveryRow struct {
	Algorithm string
	Failures  int
	// RecoverySec is the mean down-to-live time per failure (seconds).
	RecoverySec float64
	// PeerRollbacks is the mean number of *other* processes rolled back
	// per failure — the paper's headline recovery-scope axis.
	PeerRollbacks float64
	// Replayed is the mean number of messages redelivered per failure.
	Replayed float64
	// SysMsgsPerInit is the failure-free overhead: checkpoint system
	// messages per committed initiation.
	SysMsgsPerInit float64
	// LoggedMsgs is the sender-log growth over the run (log-based only).
	LoggedMsgs float64
}

// RecoverySweep runs the four-family comparison across seeded failure
// counts: every (family, failures, seed) cell is one executed
// crash-and-recover simulation. Any cell that ends inconsistent or
// without post-recovery progress fails the sweep.
func RecoverySweep(failures []int, seeds []uint64, base RecoveryConfig) ([]RecoveryRow, error) {
	if len(failures) == 0 {
		failures = []int{0, 1, 2, 4}
	}
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	var rows []RecoveryRow
	for _, algo := range RecoveryFamilies() {
		for _, f := range failures {
			row := RecoveryRow{Algorithm: algo, Failures: f}
			for _, seed := range seeds {
				cfg := base
				cfg.Algorithm = algo
				cfg.Failures = f
				cfg.Seed = seed
				res, err := RunRecovery(cfg)
				if err != nil {
					return nil, fmt.Errorf("%s failures=%d seed=%d: %w", algo, f, seed, err)
				}
				if len(res.ClusterErrors) > 0 {
					return nil, fmt.Errorf("%s failures=%d seed=%d: cluster: %v", algo, f, seed, res.ClusterErrors[0])
				}
				if !res.PostRecoveryOK {
					return nil, fmt.Errorf("%s failures=%d seed=%d: post-recovery: %v", algo, f, seed, res.PostRecoveryErr)
				}
				if int(res.Restarts) != f {
					return nil, fmt.Errorf("%s failures=%d seed=%d: %d restarts", algo, f, seed, res.Restarts)
				}
				if f > 0 && res.NewCommits == 0 {
					return nil, fmt.Errorf("%s failures=%d seed=%d: no commit after recovery", algo, f, seed)
				}
				if f > 0 {
					row.RecoverySec += res.RecoveryTime.Seconds() / float64(f)
					row.PeerRollbacks += float64(res.PeerRollbacks) / float64(f)
					row.Replayed += float64(res.Replayed) / float64(f)
				}
				row.SysMsgsPerInit += res.SysMsgsPerInit
				row.LoggedMsgs += float64(res.LoggedMsgs)
			}
			k := float64(len(seeds))
			row.RecoverySec /= k
			row.PeerRollbacks /= k
			row.Replayed /= k
			row.SysMsgsPerInit /= k
			row.LoggedMsgs /= k
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatRecovery renders the E21 comparison table.
func FormatRecovery(base RecoveryConfig, rows []RecoveryRow) string {
	base = base.defaults()
	var b strings.Builder
	fmt.Fprintf(&b, "Executed recovery comparison (N=%d, rate %g msg/s/process, interval %v, restart after %v)\n",
		base.N, base.Rate, base.Interval, base.RestartAfter)
	fmt.Fprintf(&b, "%-12s %-9s %-12s %-15s %-10s %-14s %-12s\n",
		"algorithm", "failures", "recovery(s)", "peer-rollbacks", "replayed", "sysmsgs/init", "logged")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-9d %-12.1f %-15.1f %-10.1f %-14.1f %-12.0f\n",
			r.Algorithm, r.Failures, r.RecoverySec, r.PeerRollbacks, r.Replayed, r.SysMsgsPerInit, r.LoggedMsgs)
	}
	return b.String()
}
