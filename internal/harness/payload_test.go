package harness

import (
	"testing"
	"time"

	"mutablecp/internal/chunkstore"
	"mutablecp/internal/workload"
)

func payloadConfig(mode chunkstore.Mode) Config {
	return Config{
		Algorithm:      AlgoMutable,
		N:              8,
		Seed:           7,
		Rate:           0.1,
		Interval:       300 * time.Second,
		Horizon:        90 * time.Minute,
		PayloadBytes:   64 << 10,
		PayloadProfile: workload.ProfileSkewed,
		PayloadMode:    mode,
	}
}

// TestPayloadExperiment is experiment E23's engine: the same protocol
// run with full, incremental, and delta payload storage must (a) pass
// the end-of-run payload audit, and (b) order the transfer ratios the
// way content addressing promises — incremental strictly beats full on
// a skewed-dirty-page workload, and delta is no worse than incremental.
func TestPayloadExperiment(t *testing.T) {
	ratios := make(map[chunkstore.Mode]float64)
	for _, mode := range []chunkstore.Mode{
		chunkstore.ModeFull, chunkstore.ModeIncremental, chunkstore.ModeDelta,
	} {
		res, err := Run(payloadConfig(mode))
		if err != nil {
			t.Fatalf("mode=%v: %v", mode, err)
		}
		for _, e := range res.ClusterErrors {
			t.Errorf("mode=%v cluster error: %v", mode, e)
		}
		if !res.PayloadVerifyOK {
			t.Fatalf("mode=%v payload audit failed: %v", mode, res.PayloadVerifyErr)
		}
		if res.PayloadSaves == 0 || res.PayloadSaves != res.TotalStable {
			t.Errorf("mode=%v: %d payload saves for %d stable checkpoints",
				mode, res.PayloadSaves, res.TotalStable)
		}
		if res.PayloadRatio <= 0 {
			t.Fatalf("mode=%v: no payload bytes accounted", mode)
		}
		ratios[mode] = res.PayloadRatio
		t.Logf("mode=%v saves=%d logical=%dKiB new=%dKiB ratio=%.3f",
			mode, res.PayloadSaves, res.PayloadLogicalBytes>>10,
			res.PayloadNewBytes>>10, res.PayloadRatio)
	}
	if ratios[chunkstore.ModeIncremental] >= ratios[chunkstore.ModeFull] {
		t.Errorf("incremental (%.3f) did not beat full (%.3f) on a skewed workload",
			ratios[chunkstore.ModeIncremental], ratios[chunkstore.ModeFull])
	}
	if ratios[chunkstore.ModeIncremental] > 0.5 {
		t.Errorf("incremental ratio %.3f: dedup should keep well under half the full transfer",
			ratios[chunkstore.ModeIncremental])
	}
	if ratios[chunkstore.ModeDelta] > ratios[chunkstore.ModeIncremental] {
		t.Errorf("delta (%.3f) must not exceed incremental (%.3f)",
			ratios[chunkstore.ModeDelta], ratios[chunkstore.ModeIncremental])
	}
}

// TestPayloadStripedExperiment runs the payload plane over a 3-way MSS
// stripe with 2 replicas per chunk and checks the audit passes and the
// seed-merge path carries the payload verdicts.
func TestPayloadStripedExperiment(t *testing.T) {
	cfg := payloadConfig(chunkstore.ModeIncremental)
	cfg.Horizon = 45 * time.Minute
	cfg.PayloadStripe = 3
	cfg.PayloadDir = t.TempDir()
	res, err := RunSeeds(cfg, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.ClusterErrors {
		t.Errorf("cluster error: %v", e)
	}
	if !res.PayloadVerifyOK {
		t.Fatalf("striped payload audit failed: %v", res.PayloadVerifyErr)
	}
	if res.PayloadSaves == 0 {
		t.Fatal("striped run saved no payloads")
	}
	if res.PayloadStats.Stores != 3 {
		t.Errorf("expected 3 stripe members, stats say %d", res.PayloadStats.Stores)
	}
}
