package harness_test

import (
	"strings"
	"testing"

	"mutablecp/internal/harness"
)

// errString renders an error for equality comparison (nil-safe).
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// requireIdenticalResults asserts the full Result payload matches
// bit-for-bit: every merged Sample (mean, CI, extrema, counts), every
// counter, and the consistency verdict.
func requireIdenticalResults(t *testing.T, seq, par *harness.Result) {
	t.Helper()
	if seq.Initiations != par.Initiations {
		t.Fatalf("initiations: sequential %d, parallel %d", seq.Initiations, par.Initiations)
	}
	if seq.Tentative != par.Tentative || seq.Mutable != par.Mutable ||
		seq.Redundant != par.Redundant || seq.SysMsgs != par.SysMsgs ||
		seq.DurationSec != par.DurationSec || seq.BlockedSec != par.BlockedSec {
		t.Fatalf("merged samples diverge:\nsequential: tent=%s mut=%s red=%s sys=%s dur=%s blk=%s\nparallel:   tent=%s mut=%s red=%s sys=%s dur=%s blk=%s",
			seq.Tentative.String(), seq.Mutable.String(), seq.Redundant.String(),
			seq.SysMsgs.String(), seq.DurationSec.String(), seq.BlockedSec.String(),
			par.Tentative.String(), par.Mutable.String(), par.Redundant.String(),
			par.SysMsgs.String(), par.DurationSec.String(), par.BlockedSec.String())
	}
	if seq.RedundantRatio != par.RedundantRatio {
		t.Fatalf("redundant ratio: %v vs %v", seq.RedundantRatio, par.RedundantRatio)
	}
	if seq.CompMsgs != par.CompMsgs || seq.TotalSysMsgs != par.TotalSysMsgs ||
		seq.SimulatedEvents != par.SimulatedEvents ||
		seq.TotalStable != par.TotalStable || seq.TotalMutableCk != par.TotalMutableCk ||
		seq.Intervals != par.Intervals || seq.DozeWakeups != par.DozeWakeups {
		t.Fatalf("counters diverge: sequential %+v, parallel %+v", seq, par)
	}
	if seq.ConsistencyOK != par.ConsistencyOK {
		t.Fatalf("consistency verdict: sequential %v, parallel %v", seq.ConsistencyOK, par.ConsistencyOK)
	}
	if errString(seq.ConsistencyErr) != errString(par.ConsistencyErr) {
		t.Fatalf("consistency error: %q vs %q", errString(seq.ConsistencyErr), errString(par.ConsistencyErr))
	}
	if len(seq.ClusterErrors) != len(par.ClusterErrors) {
		t.Fatalf("cluster errors: %d vs %d", len(seq.ClusterErrors), len(par.ClusterErrors))
	}
	for i := range seq.ClusterErrors {
		if seq.ClusterErrors[i].Error() != par.ClusterErrors[i].Error() {
			t.Fatalf("cluster error %d: %q vs %q", i, seq.ClusterErrors[i], par.ClusterErrors[i])
		}
	}
}

// TestParallelRunSeedsDeterministic is the determinism regression test for
// the parallel run-plan layer: for every registered algorithm, an 8-worker
// RunSeeds must be indistinguishable from the sequential run on the same
// seeds — identical sample means and CIs, counters, and consistency
// verdicts regardless of completion order.
func TestParallelRunSeedsDeterministic(t *testing.T) {
	seeds := []uint64{3, 5, 11}
	for _, algo := range harness.Algorithms() {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			cfg := harness.Config{
				Algorithm:       algo,
				Rate:            0.05,
				Horizon:         harness.ShortHorizon,
				SkipConsistency: algo == harness.AlgoNaiveNoCSN,
			}
			seq, err := harness.RunSeeds(cfg, seeds)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			par, err := harness.Parallel(8).RunSeeds(cfg, seeds)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			requireIdenticalResults(t, seq, par)
		})
	}
}

// TestParallelFig5ByteIdentical asserts the stronger end-to-end guarantee:
// the rendered Fig. 5 series (table and CSV) from a parallel regeneration
// is byte-identical to the sequential one.
func TestParallelFig5ByteIdentical(t *testing.T) {
	seeds := []uint64{1, 2}
	rates := []float64{0.01, 0.05}
	seq, err := harness.Fig5(seeds, rates)
	if err != nil {
		t.Fatal(err)
	}
	par, err := harness.Parallel(8).Fig5(seeds, rates)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Format() != par.Format() {
		t.Fatalf("Fig5 output diverges:\n--- sequential ---\n%s--- parallel ---\n%s", seq.Format(), par.Format())
	}
	if seq.CSV() != par.CSV() {
		t.Fatalf("Fig5 CSV diverges:\n%s\nvs\n%s", seq.CSV(), par.CSV())
	}
}

// TestParallelSweepsDeterministic covers the remaining grid runners at a
// reduced size: scale and interval sweeps must not depend on worker count.
func TestParallelSweepsDeterministic(t *testing.T) {
	seeds := []uint64{1}
	seqScale, err := harness.ScaleSweep([]int{4, 8}, 0.1, seeds)
	if err != nil {
		t.Fatal(err)
	}
	parScale, err := harness.Parallel(8).ScaleSweep([]int{4, 8}, 0.1, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if harness.FormatScale(0.1, seqScale) != harness.FormatScale(0.1, parScale) {
		t.Fatalf("scale sweep diverges:\n%s\nvs\n%s",
			harness.FormatScale(0.1, seqScale), harness.FormatScale(0.1, parScale))
	}
}

// TestRunSeedsErrorNamesFirstSeed pins the RunSeeds error-attribution fix:
// a failure must name the seed that produced it, and the first failing
// seed in seed order wins even under parallel completion order.
func TestRunSeedsErrorNamesFirstSeed(t *testing.T) {
	bad := harness.Config{
		Algorithm: harness.AlgoMutable,
		Rate:      0.05,
		DozeCount: 15, // leaves no active pair: Run fails for every seed
		Horizon:   harness.ShortHorizon,
	}
	seeds := []uint64{42, 7, 9}
	_, seqErr := harness.RunSeeds(bad, seeds)
	if seqErr == nil {
		t.Fatal("sequential RunSeeds accepted a broken config")
	}
	if !strings.Contains(seqErr.Error(), "seed 42") {
		t.Fatalf("sequential error does not name the first failing seed: %v", seqErr)
	}
	_, parErr := harness.Parallel(8).RunSeeds(bad, seeds)
	if parErr == nil {
		t.Fatal("parallel RunSeeds accepted a broken config")
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("error differs between modes: %q vs %q", seqErr, parErr)
	}
}

// TestRunnerWorkers pins the worker-count defaulting rules.
func TestRunnerWorkers(t *testing.T) {
	if w := harness.Parallel(4).Workers(); w != 4 {
		t.Fatalf("Parallel(4).Workers() = %d", w)
	}
	if w := harness.Parallel(0).Workers(); w < 1 {
		t.Fatalf("Parallel(0).Workers() = %d, want >= 1 (GOMAXPROCS)", w)
	}
	if w := harness.Sequential().Workers(); w != 1 {
		t.Fatalf("Sequential().Workers() = %d", w)
	}
	var nilRunner *harness.Runner
	if w := nilRunner.Workers(); w != 1 {
		t.Fatalf("nil Runner Workers() = %d", w)
	}
}
