package harness

// Payload-plane wiring for experiments: when Config.PayloadBytes is
// positive the run attaches the content-addressed chunk store as the
// checkpoint data plane — every stable checkpoint saves a synthetic
// process image (stepped by the configured mutation profile), commits
// and drops shadow the control plane, and the run's verdict includes a
// full end-of-run payload audit (every retained manifest resolves to
// intact chunks; the newest permanent image materializes).

import (
	"fmt"
	"path/filepath"

	"mutablecp/internal/checkpoint"
	"mutablecp/internal/chunkstore"
	"mutablecp/internal/protocol"
	"mutablecp/internal/recovery"
	"mutablecp/internal/simrt"
	"mutablecp/internal/stable/errfs"
	"mutablecp/internal/workload"
)

// payloadRun owns one experiment's payload backend for the duration of
// the run.
type payloadRun struct {
	sys chunkstore.System
}

// newPayloadRun builds the payload backend for cfg, or nil when the run
// is control-plane only. With PayloadDir empty the chunk segments live
// on an in-memory errfs (fast, hermetic); a directory makes them real
// files, one tree per seed so sweep seeds never share a segment log.
func newPayloadRun(cfg Config) (*payloadRun, error) {
	if cfg.PayloadBytes <= 0 {
		return nil, nil
	}
	opts := chunkstore.Options{
		ChunkBytes: cfg.PayloadChunkBytes,
		Mode:       cfg.PayloadMode,
		Keep:       1,
	}
	root := "payload"
	if cfg.PayloadDir != "" {
		root = filepath.Join(cfg.PayloadDir, fmt.Sprintf("payload-seed-%d", cfg.Seed))
	} else {
		opts.FS = errfs.New()
	}
	if cfg.PayloadStripe > 1 {
		sys, err := chunkstore.OpenStripe(
			chunkstore.StripeDirs(root, cfg.PayloadStripe), cfg.PayloadReplicas, opts)
		if err != nil {
			return nil, fmt.Errorf("harness: open payload stripe: %w", err)
		}
		return &payloadRun{sys: sys}, nil
	}
	s, err := chunkstore.Open(chunkstore.Dir(root), opts)
	if err != nil {
		return nil, fmt.Errorf("harness: open payload store: %w", err)
	}
	return &payloadRun{sys: s}, nil
}

// wire installs the payload factory and the image source into the
// simulation config.
func (pr *payloadRun) wire(simCfg *simrt.Config, cfg Config) {
	if pr == nil {
		return
	}
	images := workload.NewImages(workload.ImagesConfig{
		Procs:     cfg.N,
		Bytes:     cfg.PayloadBytes,
		PageBytes: cfg.PayloadChunkBytes,
		Profile:   cfg.PayloadProfile,
		Seed:      cfg.Seed,
	})
	simCfg.Images = images.Image
	simCfg.RestoreImage = images.Restore
	sys := pr.sys
	simCfg.NewPayload = func(pid protocol.ProcessID, n int) (checkpoint.PayloadStore, error) {
		switch b := sys.(type) {
		case *chunkstore.Store:
			return b.Proc(pid), nil
		case *chunkstore.Stripe:
			return b.Proc(pid), nil
		default:
			return nil, fmt.Errorf("harness: unknown payload backend %T", sys)
		}
	}
}

// finish audits the payload plane into the result and closes the
// backend.
func (pr *payloadRun) finish(res *Result, n int) {
	if pr == nil {
		return
	}
	res.PayloadVerifyErr = recovery.VerifyPayloads(pr.sys, n)
	res.PayloadVerifyOK = res.PayloadVerifyErr == nil
	res.PayloadStats = pr.sys.Stats()
	if err := pr.sys.Close(); err != nil && res.PayloadVerifyErr == nil {
		res.PayloadVerifyErr = fmt.Errorf("harness: close payload store: %w", err)
		res.PayloadVerifyOK = false
	}
}

// close releases the backend on early-error paths.
func (pr *payloadRun) close() {
	if pr != nil {
		pr.sys.Close() //nolint:errcheck
	}
}
