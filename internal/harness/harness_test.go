package harness_test

import (
	"strings"
	"testing"
	"time"

	"mutablecp/internal/harness"
)

// short returns a config sized for unit tests.
func short(algo string, rate float64) harness.Config {
	return harness.Config{
		Algorithm: algo,
		Rate:      rate,
		Horizon:   harness.ShortHorizon,
		Seed:      3,
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	if _, err := harness.NewEngine("nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := harness.Run(harness.Config{Algorithm: "nope", Rate: 0.1}); err == nil {
		t.Fatal("Run accepted unknown algorithm")
	}
}

func TestAlgorithmsRegistryComplete(t *testing.T) {
	names := harness.Algorithms()
	if len(names) != 9 {
		t.Fatalf("registry has %d algorithms", len(names))
	}
	for _, name := range names {
		factory, err := harness.NewEngine(name)
		if err != nil || factory == nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunProducesSamples(t *testing.T) {
	res, err := harness.Run(short(harness.AlgoMutable, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if res.Initiations < 5 {
		t.Fatalf("initiations = %d", res.Initiations)
	}
	if res.Tentative.N() != res.Initiations {
		t.Fatal("sample count mismatch")
	}
	if !res.ConsistencyOK {
		t.Fatalf("inconsistent: %v", res.ConsistencyErr)
	}
	if len(res.ClusterErrors) != 0 {
		t.Fatalf("cluster errors: %v", res.ClusterErrors)
	}
	if res.CompMsgs == 0 || res.TotalSysMsgs == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestRunSeedsMerges(t *testing.T) {
	single, err := harness.Run(short(harness.AlgoMutable, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := harness.RunSeeds(short(harness.AlgoMutable, 0.05), []uint64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Initiations <= single.Initiations {
		t.Fatalf("merged %d vs single %d", merged.Initiations, single.Initiations)
	}
	if _, err := harness.RunSeeds(short(harness.AlgoMutable, 0.05), nil); err == nil {
		t.Fatal("no-seeds accepted")
	}
}

// TestFig5ShapeRises asserts the published shape: tentative checkpoints
// per initiation increase monotonically (within noise) with the sending
// rate, approaching N=16, and redundant mutable checkpoints stay far below
// tentative ones (paper: < 4%).
func TestFig5ShapeRises(t *testing.T) {
	series, err := harness.Fig5([]uint64{1, 2}, []float64{0.002, 0.01, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rows := series.Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !(rows[0].Tentative < rows[1].Tentative && rows[1].Tentative < rows[2].Tentative+0.5) {
		t.Fatalf("tentative not rising: %+v", rows)
	}
	if rows[2].Tentative < 15 {
		t.Fatalf("high-rate tentative = %.2f, want ~16", rows[2].Tentative)
	}
	for _, r := range rows {
		if !r.ConsistencyOK {
			t.Fatalf("rate %g inconsistent", r.Rate)
		}
		if r.Tentative > 0 && r.Redundant/r.Tentative > 0.04 {
			t.Fatalf("rate %g: redundant %.2f%% exceeds the paper's 4%% bound",
				r.Rate, 100*r.Redundant/r.Tentative)
		}
	}
	if !strings.Contains(series.Format(), "tentative") {
		t.Fatal("Format output broken")
	}
}

// TestFig6FewerCheckpointsThanP2P asserts the group-communication shape:
// fewer tentative checkpoints than point-to-point at the same rate, and
// ratio 10000 at most ratio 1000.
func TestFig6FewerCheckpointsThanP2P(t *testing.T) {
	rate := []float64{0.02}
	seeds := []uint64{1, 2}
	p2p, err := harness.Fig5(seeds, rate)
	if err != nil {
		t.Fatal(err)
	}
	g1000, err := harness.Fig6(1000, seeds, rate)
	if err != nil {
		t.Fatal(err)
	}
	g10000, err := harness.Fig6(10000, seeds, rate)
	if err != nil {
		t.Fatal(err)
	}
	if g1000.Rows[0].Tentative >= p2p.Rows[0].Tentative {
		t.Fatalf("group(1000)=%.2f not below p2p=%.2f",
			g1000.Rows[0].Tentative, p2p.Rows[0].Tentative)
	}
	if g10000.Rows[0].Tentative > g1000.Rows[0].Tentative+0.5 {
		t.Fatalf("group(10000)=%.2f above group(1000)=%.2f",
			g10000.Rows[0].Tentative, g1000.Rows[0].Tentative)
	}
}

// TestTable1Shape asserts the qualitative Table 1 claims: Koo–Toueg
// blocks, the others do not; Elnozahy checkpoints all N; the mutable
// algorithm takes no more checkpoints than Elnozahy and roughly matches
// Koo–Toueg (both ~Nmin).
func TestTable1Shape(t *testing.T) {
	rows, err := harness.Table1(0.01, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]harness.Table1Row{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	kt := byName[harness.AlgoKooToueg]
	ez := byName[harness.AlgoElnozahy]
	mu := byName[harness.AlgoMutable]
	if kt.BlockingSec <= 0 {
		t.Fatal("Koo–Toueg reports no blocking")
	}
	if ez.BlockingSec != 0 || mu.BlockingSec != 0 {
		t.Fatal("nonblocking algorithms report blocking")
	}
	if ez.Checkpoints < 15.9 {
		t.Fatalf("Elnozahy checkpoints %.2f, want 16 (all N)", ez.Checkpoints)
	}
	if mu.Checkpoints > ez.Checkpoints+0.01 {
		t.Fatal("mutable takes more checkpoints than all-process Elnozahy")
	}
	if mu.Checkpoints > kt.Checkpoints*1.3+1 {
		t.Fatalf("mutable %.2f far above Koo–Toueg %.2f (both should be ~Nmin)",
			mu.Checkpoints, kt.Checkpoints)
	}
	if !kt.Distributed || !mu.Distributed || ez.Distributed {
		t.Fatal("distributed flags wrong")
	}
	out := harness.FormatTable1(0.01, rows)
	if !strings.Contains(out, "koo-toueg") || !strings.Contains(out, "paper formulas") {
		t.Fatal("FormatTable1 output broken")
	}
}

// TestAblationAvalanche asserts E9's shape: the naive schemes write far
// more stable checkpoints per interval than the mutable scheme.
func TestAblationAvalanche(t *testing.T) {
	rows, err := harness.Ablation(0.05, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]harness.AblationRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	simple := byName[harness.AlgoNaiveSimple].StablePerInterval
	revised := byName[harness.AlgoNaiveRevised].StablePerInterval
	mutable := byName[harness.AlgoMutable].StablePerInterval
	if simple < 3*mutable {
		t.Fatalf("simple=%.1f not ≫ mutable=%.1f stable ckpts/interval", simple, mutable)
	}
	if revised < 2*mutable {
		t.Fatalf("revised=%.1f not ≫ mutable=%.1f", revised, mutable)
	}
	if mutable > 17 {
		t.Fatalf("mutable=%.1f stable ckpts/interval, want ≈16", mutable)
	}
	if !strings.Contains(harness.FormatAblation(0.05, rows), "avalanche") &&
		!strings.Contains(harness.FormatAblation(0.05, rows), "Avalanche") {
		t.Fatal("FormatAblation output broken")
	}
}

// TestOutputCommitDelayClaim asserts §5.3.1: the output-commit delay of
// the mutable algorithm is ≈ Nmin·Tch (and below Elnozahy's N·Tch at low
// rates where Nmin < N).
func TestOutputCommitDelayClaim(t *testing.T) {
	seeds := []uint64{1, 2}
	mu, err := harness.RunSeeds(harness.Config{
		Algorithm: harness.AlgoMutable, Rate: 0.003, Horizon: 20 * 900 * time.Second,
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	ez, err := harness.RunSeeds(harness.Config{
		Algorithm: harness.AlgoElnozahy, Rate: 0.003, Horizon: 20 * 900 * time.Second,
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if mu.Tentative.Mean() >= 15 {
		t.Skip("dependency set saturated at this rate; claim needs Nmin < N")
	}
	if mu.DurationSec.Mean() >= ez.DurationSec.Mean() {
		t.Fatalf("mutable output commit %.1fs not below Elnozahy %.1fs at Nmin=%.1f",
			mu.DurationSec.Mean(), ez.DurationSec.Mean(), mu.Tentative.Mean())
	}
	// ≈ Nmin·Tch with Tch ≈ 2.1 s serialized transfers.
	approx := mu.Tentative.Mean() * 2.1
	if mu.DurationSec.Mean() < approx*0.5 || mu.DurationSec.Mean() > approx*2.5 {
		t.Fatalf("output commit %.1fs vs Nmin*Tch %.1fs out of shape", mu.DurationSec.Mean(), approx)
	}
}

func TestQuickSeeds(t *testing.T) {
	seeds := harness.QuickSeeds(4)
	if len(seeds) != 4 {
		t.Fatal("wrong count")
	}
	seen := map[uint64]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatal("duplicate seed")
		}
		seen[s] = true
	}
}

func TestGroupWorkloadRun(t *testing.T) {
	res, err := harness.Run(harness.Config{
		Algorithm:  harness.AlgoMutable,
		Workload:   harness.WorkloadGroup,
		Rate:       0.05,
		GroupRatio: 1000,
		Horizon:    harness.ShortHorizon,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConsistencyOK {
		t.Fatalf("inconsistent: %v", res.ConsistencyErr)
	}
	if res.Initiations == 0 {
		t.Fatal("no initiations")
	}
}

// TestCommitFanoutTradeoff asserts the §3.3.5 claim: the targeted update
// approach never wakes uninvolved dozing hosts, while the broadcast wakes
// nearly all of them on every initiation.
func TestCommitFanoutTradeoff(t *testing.T) {
	rows, err := harness.CommitFanout(0.05, 8, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]harness.FanoutRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	broadcast := byName[harness.AlgoMutable]
	targeted := byName[harness.AlgoMutableTargeted]
	if broadcast.WakeupsPerInit < 4 {
		t.Fatalf("broadcast woke only %.2f dozing hosts/init, want most of 8", broadcast.WakeupsPerInit)
	}
	if targeted.WakeupsPerInit != 0 {
		t.Fatalf("targeted dissemination woke %.2f dozing hosts/init, want 0", targeted.WakeupsPerInit)
	}
	out := harness.FormatFanout(0.05, 8, rows)
	if !strings.Contains(out, "mutable-targeted") {
		t.Fatal("FormatFanout broken")
	}
}

// TestTargetedDisseminationConsistent runs the targeted variant through
// the standard consistency gauntlet.
func TestTargetedDisseminationConsistent(t *testing.T) {
	res, err := harness.Run(short(harness.AlgoMutableTargeted, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConsistencyOK {
		t.Fatalf("inconsistent: %v", res.ConsistencyErr)
	}
	if res.Initiations == 0 {
		t.Fatal("no initiations")
	}
	for _, e := range res.ClusterErrors {
		t.Errorf("cluster error: %v", e)
	}
}

// TestDozeCountValidation rejects configurations with no active pair.
func TestDozeCountValidation(t *testing.T) {
	_, err := harness.Run(harness.Config{
		Algorithm: harness.AlgoMutable,
		Rate:      0.05,
		DozeCount: 15,
		Horizon:   harness.ShortHorizon,
	})
	if err == nil {
		t.Fatal("DozeCount=N-1 accepted")
	}
}

// TestScaleSweepComplexity asserts the complexity claims: Koo–Toueg's
// message count grows superlinearly with N while Elnozahy's and the
// mutable algorithm's grow roughly linearly.
func TestScaleSweepComplexity(t *testing.T) {
	rows, err := harness.ScaleSweep([]int{4, 16}, 0.1, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	small, large := rows[0], rows[1]
	ktGrowth := large.KooTouegMsg / small.KooTouegMsg
	muGrowth := large.MutableMsg / small.MutableMsg
	ezGrowth := large.ElnozahyMsg / small.ElnozahyMsg
	// N quadrupled: quadratic growth ~16x, linear ~4x.
	if ktGrowth < 8 {
		t.Fatalf("Koo–Toueg growth %.1fx over 4x N, want superlinear (>8x)", ktGrowth)
	}
	if ezGrowth > 6 {
		t.Fatalf("Elnozahy growth %.1fx, want ~linear", ezGrowth)
	}
	if muGrowth >= ktGrowth {
		t.Fatalf("mutable growth %.1fx not below Koo–Toueg %.1fx", muGrowth, ktGrowth)
	}
	if !strings.Contains(harness.FormatScale(0.1, rows), "koo-toueg") {
		t.Fatal("FormatScale broken")
	}
}

// TestIntervalSweepRedundantGrows asserts that shrinking the checkpoint
// interval (so the ~30 s checkpointing window is a larger fraction of it)
// increases redundant mutable checkpoints — the paper's §5.2 explanation
// of why they are rare at 900 s.
func TestIntervalSweepRedundantGrows(t *testing.T) {
	rows, err := harness.IntervalSweep(
		[]time.Duration{100 * time.Second, 900 * time.Second}, 0.05, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Redundant <= rows[1].Redundant {
		t.Fatalf("redundant at 100s (%.4f) not above 900s (%.4f)",
			rows[0].Redundant, rows[1].Redundant)
	}
	if !strings.Contains(harness.FormatIntervals(0.05, rows), "interval") {
		t.Fatal("FormatIntervals broken")
	}
}

// TestFigCSV checks the plotting output.
func TestFigCSV(t *testing.T) {
	series, err := harness.Fig5([]uint64{1}, []float64{0.05})
	if err != nil {
		t.Fatal(err)
	}
	csv := series.CSV()
	if !strings.HasPrefix(csv, "rate,tentative,") {
		t.Fatalf("csv header: %q", csv)
	}
	if !strings.Contains(csv, "\n0.05,") {
		t.Fatalf("csv row missing: %q", csv)
	}
}
