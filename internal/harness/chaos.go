package harness

// The chaos gauntlet: runs the mutable-checkpointing engine over the full
// unreliable stack — relnet's ARQ sublayer on top of netsim.Faulty on top
// of the shared wireless LAN — and verifies that the protocol's safety
// properties survive message loss, duplication, jitter, partition windows,
// and fail-stop crashes:
//
//   - every committed global checkpoint is free of orphan messages, checked
//     line by line as the run's permanent history replays;
//   - every instance that did not commit left nothing behind: no tentative
//     or mutable checkpoint leaks on any live process, and no initiator is
//     still holding termination weight after the drain;
//   - identical seed + fault configuration reproduce byte-identical
//     metrics (the Fingerprint field).
//
// Instances whose *initiator* crashed are exempt from the leak check:
// their participants legitimately hold tentative checkpoints that only the
// MSS-side recovery procedure (future work, see ROADMAP) would resolve.

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mutablecp/internal/checkpoint"
	"mutablecp/internal/consistency"
	"mutablecp/internal/core"
	"mutablecp/internal/des"
	"mutablecp/internal/netsim"
	"mutablecp/internal/protocol"
	"mutablecp/internal/recovery"
	"mutablecp/internal/relnet"
	"mutablecp/internal/simrt"
	"mutablecp/internal/stable"
	"mutablecp/internal/workload"
)

// ChaosConfig describes one chaos-gauntlet run. The zero value takes the
// defaults below; fault fields at zero inject nothing of that kind.
type ChaosConfig struct {
	N    int
	Seed uint64
	// Rate is the per-process point-to-point message rate (msgs/s).
	Rate float64
	// Interval is the per-process checkpoint interval (default 300 s —
	// shorter than the paper's 900 s so one run exercises many instances).
	Interval time.Duration
	// Horizon is the simulated run length (default 12 intervals).
	Horizon time.Duration
	// RequestTimeout is the §3.6 initiator give-up timer (default 120 s).
	// It must exceed the partition window plus the ARQ recovery time, or
	// healthy instances abort spuriously.
	RequestTimeout time.Duration
	// PartialCommit selects the Kim–Park resolution on timeout with a
	// known crashed process: the uncontaminated subtree still commits.
	PartialCommit bool

	// Drop and Dup are per-message probabilities in [0, 1).
	Drop float64
	Dup  float64
	// JitterMax is the maximum extra per-copy delivery delay.
	JitterMax time.Duration
	// PartitionWindow, when positive, cuts the cluster in half (low pids
	// vs high pids) for that long, starting at Horizon/3.
	PartitionWindow time.Duration
	// CrashCount fail-stops the highest-numbered processes at Horizon/2.
	CrashCount int
	// CrashRestartAfter, when positive, turns the crash into a
	// crash-and-recover: the victim's network window heals that long after
	// the crash and the recovery executor rolls the whole cluster back to
	// the newest committed line, live. Requires CrashCount == 1 (recovery
	// restores every process, so a second victim must not still be down).
	// Messages the ARQ abandons during the outage are recovered by the
	// rollback's channel-deficit replay.
	CrashRestartAfter time.Duration

	// StoreDir, when non-empty, backs the stable stores with the durable
	// internal/stable log under this directory (each seed in its own
	// seed-<n> subdirectory, so one StoreDir serves a whole gauntlet). The
	// post-run audit then also proves the on-disk image reproduces the
	// verified state.
	StoreDir string
	// MSSRestart crashes and restarts every support station's storage at
	// Horizon/2, mid-protocol: stores close and recover from disk while
	// instances are in flight. Requires StoreDir — with the in-memory
	// backend the restart would (correctly, and fatally for the run)
	// lose every checkpoint.
	MSSRestart bool
}

func (c ChaosConfig) defaults() ChaosConfig {
	if c.N == 0 {
		c.N = 8
	}
	if c.Rate == 0 {
		c.Rate = 2
	}
	if c.Interval == 0 {
		c.Interval = 300 * time.Second
	}
	if c.Horizon == 0 {
		c.Horizon = 12 * c.Interval
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 120 * time.Second
	}
	return c
}

// faultConfig assembles the netsim.FaultConfig for this run.
func (c ChaosConfig) faultConfig() netsim.FaultConfig {
	fc := netsim.FaultConfig{
		Seed:      c.Seed,
		Drop:      c.Drop,
		Dup:       c.Dup,
		JitterMax: c.JitterMax,
	}
	if c.PartitionWindow > 0 {
		groupA := make([]protocol.ProcessID, 0, c.N/2)
		for p := 0; p < c.N/2; p++ {
			groupA = append(groupA, p)
		}
		start := c.Horizon / 3
		fc.Partitions = []netsim.Partition{
			{From: start, Until: start + c.PartitionWindow, GroupA: groupA},
		}
	}
	if c.CrashCount > 0 {
		fc.CrashAt = make(map[protocol.ProcessID]time.Duration, c.CrashCount)
		for i := 0; i < c.CrashCount; i++ {
			fc.CrashAt[c.N-1-i] = c.Horizon / 2
		}
		if c.CrashRestartAfter > 0 {
			fc.RestartAt = make(map[protocol.ProcessID]time.Duration, c.CrashCount)
			for p, at := range fc.CrashAt {
				fc.RestartAt[p] = at + c.CrashRestartAfter
			}
		}
	}
	return fc
}

// ChaosResult aggregates one chaos run plus its verification verdicts.
type ChaosResult struct {
	Config ChaosConfig

	// Committed counts terminated instances that produced at least one
	// permanent checkpoint (full or partial commits); Aborted counts
	// terminated instances that produced none.
	Committed int
	Aborted   int
	// LinesChecked is the number of reconstructed global checkpoint lines
	// that passed the orphan check (one per committed instance).
	LinesChecked int

	TimeoutAborts uint64
	Rel           relnet.Metrics

	Dropped          uint64
	Duplicated       uint64
	Jittered         uint64
	PartitionDropped uint64
	CrashDropped     uint64
	RevivedDeliveries uint64

	// Crash-and-recover verdict (CrashRestartAfter > 0 only). RecoveredOK
	// requires: the victim restarted exactly once, the live states were
	// consistent immediately after the recovery event, and the resumed run
	// committed at least one new line.
	RecoveredOK   bool
	Restarts      uint64
	PeerRollbacks uint64
	Replayed      uint64
	RecoveryTime  time.Duration

	SimulatedEvents uint64

	// Fingerprint is a deterministic digest of every counter above: equal
	// seeds and fault configs must produce equal fingerprints.
	Fingerprint string
}

// initiating is the slice of the engine surface the post-run weight check
// needs; core.Engine implements it.
type initiating interface{ Initiating() bool }

// RunChaos executes one chaos run and verifies it. A non-nil error means
// either an infrastructure failure or a protocol-safety violation (orphan
// line, leaked checkpoint, unreturned weight).
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	cfg = cfg.defaults()
	if cfg.MSSRestart && cfg.StoreDir == "" {
		return nil, fmt.Errorf("chaos: MSSRestart requires StoreDir (an in-memory store cannot survive a storage restart)")
	}
	if cfg.CrashRestartAfter > 0 && cfg.CrashCount != 1 {
		return nil, fmt.Errorf("chaos: CrashRestartAfter needs exactly one victim, got CrashCount=%d", cfg.CrashCount)
	}
	fc := cfg.faultConfig()

	var faulty *netsim.Faulty
	var rel *relnet.Reliable
	simCfg := simrt.Config{
		N:                     cfg.N,
		Seed:                  cfg.Seed,
		NewEngine:             func(env protocol.Env) protocol.Engine { return core.New(env) },
		CheckpointInterval:    cfg.Interval,
		ScheduleCheckpoints:   true,
		SingleInitiation:      true,
		RequestTimeout:        cfg.RequestTimeout,
		PartialAbortOnFailure: cfg.PartialCommit,
		NewTransport: func(sim *des.Simulator, n int) netsim.Transport {
			lan := netsim.NewLAN(sim, n, netsim.WirelessLAN2Mbps)
			faulty = netsim.NewFaulty(sim, lan, n, fc)
			rel = relnet.New(sim, faulty, n, relnet.Config{})
			return rel
		},
	}
	// The chaos verifier replays the full permanent history, so the
	// durable stores run in audit mode (Keep=0: no compaction).
	storeOpts := stable.Options{}
	if cfg.StoreDir != "" {
		dir := storeSeedDir(cfg.StoreDir, cfg.Seed)
		simCfg.NewStore = func(pid protocol.ProcessID, n int) (checkpoint.Store, error) {
			return stable.Open(stable.ProcDir(dir, pid), pid, n, storeOpts)
		}
	}
	cluster, err := simrt.New(simCfg)
	if err != nil {
		return nil, err
	}

	gen := &workload.PointToPoint{Rate: cfg.Rate}
	gen.Install(cluster)
	// Fail-stop the victims at the transport's crash instant: the host
	// stops generating traffic and loses its volatile state exactly when
	// the network stops carrying its frames. Iterate in process order, not
	// map order — same-instant events execute in schedule order.
	var postRecoveryErr error
	recoveries := 0
	if cfg.CrashRestartAfter > 0 {
		exec, err := recovery.NewExecutor(cluster, recovery.ExecOptions{Mode: recovery.ModeRollback})
		if err != nil {
			return nil, fmt.Errorf("chaos: %w", err)
		}
		victim := protocol.ProcessID(cfg.N - 1)
		plans := []simrt.CrashPlan{{
			Proc: victim, At: fc.CrashAt[victim], RestartAfter: cfg.CrashRestartAfter,
		}}
		hook := func(pid protocol.ProcessID) error {
			if _, err := exec.Recover(pid); err != nil {
				return err
			}
			recoveries++
			// Checked inside the recovery event: later traffic cannot mask
			// an orphan or double delivery the rollback left behind.
			if err := consistency.Check(cluster.States()); err != nil && postRecoveryErr == nil {
				postRecoveryErr = err
			}
			return nil
		}
		if err := cluster.InstallCrashes(plans, hook); err != nil {
			return nil, fmt.Errorf("chaos: %w", err)
		}
	} else {
		for victim := 0; victim < cfg.N; victim++ {
			if at, ok := fc.CrashAt[victim]; ok {
				v := cluster.Proc(victim)
				cluster.Sim().Schedule(at, v.Fail)
			}
		}
	}
	// The MSS storage restart lands at the same midpoint as the host
	// crashes: storage recovers from disk mid-protocol, with instances in
	// flight, and the run must not notice.
	var restartErr error
	if cfg.MSSRestart {
		cluster.Sim().Schedule(cfg.Horizon/2, func() {
			if err := cluster.RestartStores(); err != nil && restartErr == nil {
				restartErr = err
			}
		})
	}
	cluster.Start()

	if err := cluster.Run(cfg.Horizon); err != nil {
		return nil, fmt.Errorf("chaos: run: %w", err)
	}
	if restartErr != nil {
		return nil, fmt.Errorf("chaos: MSS restart: %w", restartErr)
	}
	gen.Stop()
	cluster.StopTimers()
	if err := cluster.Drain(); err != nil {
		return nil, fmt.Errorf("chaos: drain: %w", err)
	}
	for _, e := range cluster.Errors() {
		return nil, fmt.Errorf("chaos: cluster invariant: %w", e)
	}

	met := cluster.Metrics()
	res := &ChaosResult{
		Config:            cfg,
		TimeoutAborts:     met.TimeoutAborts,
		Rel:               rel.Metrics,
		Dropped:           faulty.Dropped,
		Duplicated:        faulty.Duplicated,
		Jittered:          faulty.Jittered,
		PartitionDropped:  faulty.PartitionDropped,
		CrashDropped:      faulty.CrashDropped,
		RevivedDeliveries: faulty.RevivedDeliveries,
		Restarts:          met.Restarts,
		PeerRollbacks:     met.PeerRollbacks,
		Replayed:          met.ReplayedMessages,
		RecoveryTime:      met.RecoveryTime,
		SimulatedEvents:   cluster.Executed(),
	}
	if err := verifyChaos(cluster, fc, cfg.CrashRestartAfter > 0, res); err != nil {
		return nil, err
	}
	if cfg.CrashRestartAfter > 0 {
		if postRecoveryErr != nil {
			return nil, fmt.Errorf("chaos: post-recovery live state: %w", postRecoveryErr)
		}
		if recoveries != 1 || res.Restarts != 1 {
			return nil, fmt.Errorf("chaos: %d recoveries, %d restarts, want 1/1", recoveries, res.Restarts)
		}
		restartAt := fc.CrashAt[protocol.ProcessID(cfg.N-1)] + cfg.CrashRestartAfter
		newCommits := 0
		for _, rec := range met.Completed() {
			if rec.Committed && rec.Start > restartAt {
				newCommits++
			}
		}
		if newCommits == 0 {
			return nil, fmt.Errorf("chaos: no line committed after the recovery at %v", restartAt)
		}
		res.RecoveredOK = true
	}
	if cfg.StoreDir != "" {
		// Everything the verifier just accepted must survive a final
		// storage restart byte-for-byte: reopen every store from disk and
		// compare it against the verified in-memory image.
		if err := verifyDiskFidelity(cluster); err != nil {
			return nil, err
		}
	}
	res.Fingerprint = fmt.Sprintf(
		"committed=%d aborted=%d lines=%d timeouts=%d rel=%+v drop=%d dup=%d jit=%d part=%d crash=%d revived=%d restarts=%d peers=%d replayed=%d rt=%v recovered=%v events=%d",
		res.Committed, res.Aborted, res.LinesChecked, res.TimeoutAborts, res.Rel,
		res.Dropped, res.Duplicated, res.Jittered, res.PartitionDropped, res.CrashDropped,
		res.RevivedDeliveries, res.Restarts, res.PeerRollbacks, res.Replayed, res.RecoveryTime,
		res.RecoveredOK, res.SimulatedEvents)
	return res, nil
}

// verifyChaos replays the run's permanent history as a sequence of global
// checkpoint lines, orphan-checking each, then audits every process for
// leaked state. When the crash was recovered, no process stays crashed:
// the victim is back, the rollback cleaned every half-done instance, and
// the full leak audit applies to everyone.
func verifyChaos(cluster *simrt.Cluster, fc netsim.FaultConfig, recovered bool, res *ChaosResult) error {
	n := cluster.N()
	crashed := func(p protocol.ProcessID) bool {
		if recovered {
			return false
		}
		_, ok := fc.CrashAt[p]
		return ok
	}

	// Index every permanent checkpoint by (process, trigger). The seeded
	// initial checkpoint (NoTrigger) forms the starting line.
	line := make(map[protocol.ProcessID]protocol.State, n)
	perm := make([]map[protocol.Trigger]protocol.State, n)
	for p := 0; p < n; p++ {
		hist := cluster.Proc(p).Stable().History()
		line[p] = hist[0].State
		perm[p] = make(map[protocol.Trigger]protocol.State, len(hist)-1)
		for _, rec := range hist[1:] {
			perm[p][rec.Trigger] = rec.State
		}
	}

	// Walk terminated instances in termination order and advance the line.
	recs := append([]*simrt.InitiationRecord(nil), cluster.Metrics().Completed()...)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].End < recs[j].End })
	for _, rec := range recs {
		updated := 0
		for p := 0; p < n; p++ {
			if st, ok := perm[p][rec.Trigger]; ok {
				line[p] = st
				updated++
			}
		}
		if updated == 0 {
			// A clean abort: the instance must have left no permanents
			// anywhere (already true: updated == 0), and the line stands.
			res.Aborted++
			continue
		}
		res.Committed++
		// A crashed participant that reached its tentative checkpoint
		// stored it at the MSS before dying; the MSS commits on its behalf
		// (the commit message itself was lost with the host), so the line
		// uses the surviving tentative.
		for p := 0; p < n; p++ {
			if !crashed(p) {
				continue
			}
			if t, ok := cluster.Proc(p).Stable().Tentative(rec.Trigger); ok {
				line[p] = t.State
			}
		}
		if err := consistency.Check(line); err != nil {
			return fmt.Errorf("chaos: committed line for trigger %+v (ended %v): %w",
				rec.Trigger, rec.End, err)
		}
		res.LinesChecked++
	}

	// Leak audit. Crashed processes are skipped entirely (their volatile
	// state is gone and their MSS-side tentatives were handled above), and
	// instances whose initiator crashed are exempt: nobody is left to
	// disseminate their commit or abort.
	for p := 0; p < n; p++ {
		if crashed(p) {
			continue
		}
		proc := cluster.Proc(p)
		for _, trig := range proc.Stable().TentativeTriggers() {
			if !crashed(trig.Pid) {
				return fmt.Errorf("chaos: P%d leaked a tentative checkpoint for live-initiator trigger %+v", p, trig)
			}
		}
		for _, trig := range proc.Mutable().Triggers() {
			if !crashed(trig.Pid) {
				return fmt.Errorf("chaos: P%d leaked a mutable checkpoint for live-initiator trigger %+v", p, trig)
			}
		}
		if eng, ok := proc.Engine().(initiating); ok && eng.Initiating() {
			return fmt.Errorf("chaos: P%d still holds termination weight after the drain", p)
		}
	}
	return nil
}

// verifyDiskFidelity restarts the durable stores and checks the state
// they recover from disk — permanent history, newest permanent, pending
// tentatives — equals the state the run ended (and was verified) with.
func verifyDiskFidelity(cluster *simrt.Cluster) error {
	type image struct {
		histCSNs []int
		permCSN  int
		tents    []protocol.Trigger
	}
	before := make([]image, cluster.N())
	for p := 0; p < cluster.N(); p++ {
		st := cluster.Proc(p).Stable()
		img := image{permCSN: st.Permanent().State.CSN, tents: st.TentativeTriggers()}
		for _, rec := range st.History() {
			img.histCSNs = append(img.histCSNs, rec.State.CSN)
		}
		before[p] = img
	}
	if err := cluster.RestartStores(); err != nil {
		return fmt.Errorf("chaos: final store restart: %w", err)
	}
	for p := 0; p < cluster.N(); p++ {
		st := cluster.Proc(p).Stable()
		if got := st.Permanent().State.CSN; got != before[p].permCSN {
			return fmt.Errorf("chaos: P%d permanent CSN %d from disk, had %d", p, got, before[p].permCSN)
		}
		hist := st.History()
		if len(hist) != len(before[p].histCSNs) {
			return fmt.Errorf("chaos: P%d recovered %d permanents from disk, had %d", p, len(hist), len(before[p].histCSNs))
		}
		for i, rec := range hist {
			if rec.State.CSN != before[p].histCSNs[i] {
				return fmt.Errorf("chaos: P%d history[%d] CSN %d from disk, had %d", p, i, rec.State.CSN, before[p].histCSNs[i])
			}
		}
		got := st.TentativeTriggers()
		if len(got) != len(before[p].tents) {
			return fmt.Errorf("chaos: P%d recovered %d tentatives from disk, had %d", p, len(got), len(before[p].tents))
		}
		for i, trig := range got {
			if trig != before[p].tents[i] {
				return fmt.Errorf("chaos: P%d tentative %v from disk, had %v", p, trig, before[p].tents[i])
			}
		}
	}
	return nil
}

// ChaosPoint is one operating point of the gauntlet grid.
type ChaosPoint struct {
	Label  string
	Config ChaosConfig // Seed is overwritten per gauntlet seed
}

// DefaultChaosPoints is the standard gauntlet: a fault-free control plus
// four faulty points sweeping the loss rate from 0 to 20%, all with
// duplication, jitter, and a partition window, the heavier ones with a
// fail-stop crash.
func DefaultChaosPoints() []ChaosPoint {
	return []ChaosPoint{
		{Label: "clean", Config: ChaosConfig{}},
		{Label: "drop0", Config: ChaosConfig{
			Dup: 0.05, JitterMax: 5 * time.Millisecond, PartitionWindow: 10 * time.Second,
		}},
		{Label: "drop5", Config: ChaosConfig{
			Drop: 0.05, Dup: 0.05, JitterMax: 5 * time.Millisecond,
			PartitionWindow: 10 * time.Second, CrashCount: 1,
		}},
		{Label: "drop10", Config: ChaosConfig{
			Drop: 0.10, Dup: 0.05, JitterMax: 5 * time.Millisecond,
			PartitionWindow: 10 * time.Second, CrashCount: 1, PartialCommit: true,
		}},
		{Label: "drop20", Config: ChaosConfig{
			Drop: 0.20, Dup: 0.10, JitterMax: 10 * time.Millisecond,
			PartitionWindow: 10 * time.Second, CrashCount: 1,
		}},
		// The crash is recovered live 20 s later (under relnet's ~30 s ARQ
		// give-up): coordinated rollback, post-recovery consistency, and a
		// RecoveredOK verdict on top of the usual line checks.
		{Label: "recover", Config: ChaosConfig{
			Drop: 0.05, Dup: 0.05, JitterMax: 5 * time.Millisecond,
			PartitionWindow: 10 * time.Second, CrashCount: 1,
			CrashRestartAfter: 20 * time.Second,
		}},
	}
}

// ChaosRow aggregates one operating point across all gauntlet seeds.
type ChaosRow struct {
	Label string
	Seeds int

	Committed     int
	Aborted       int
	LinesChecked  int
	TimeoutAborts uint64

	Retransmissions uint64
	DupsSuppressed  uint64
	GaveUp          uint64

	Dropped          uint64
	Duplicated       uint64
	PartitionDropped uint64
	CrashDropped     uint64

	// Recovered counts seeds whose crash-and-recover verdict was OK
	// (equals Seeds on recover points — RunChaos fails otherwise — and 0
	// on plain points).
	Recovered int
}

// ChaosGauntlet runs every operating point across every seed and verifies
// each run; see Runner.ChaosGauntlet for the parallel form.
func ChaosGauntlet(points []ChaosPoint, seeds []uint64) ([]ChaosRow, error) {
	return Sequential().ChaosGauntlet(points, seeds)
}

// ChaosGauntlet is the parallel form: every (point, seed) cell is an
// independent simulation. On failure the error names the first failing
// point and seed in deterministic grid order, regardless of worker count.
func (r *Runner) ChaosGauntlet(points []ChaosPoint, seeds []uint64) ([]ChaosRow, error) {
	if len(points) == 0 {
		points = DefaultChaosPoints()
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("harness: no seeds")
	}
	nS := len(seeds)
	flat, err := RunJobs(r.Workers(), len(points)*nS, func(i int) (*ChaosResult, error) {
		cfg := points[i/nS].Config
		cfg.Seed = seeds[i%nS]
		res, err := RunChaos(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: seed %d: %w", points[i/nS].Label, cfg.Seed, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ChaosRow, len(points))
	for pi, pt := range points {
		row := ChaosRow{Label: pt.Label, Seeds: nS}
		for si := 0; si < nS; si++ {
			res := flat[pi*nS+si]
			row.Committed += res.Committed
			row.Aborted += res.Aborted
			row.LinesChecked += res.LinesChecked
			row.TimeoutAborts += res.TimeoutAborts
			row.Retransmissions += res.Rel.Retransmissions
			row.DupsSuppressed += res.Rel.DupsSuppressed
			row.GaveUp += res.Rel.GaveUp
			row.Dropped += res.Dropped
			row.Duplicated += res.Duplicated
			row.PartitionDropped += res.PartitionDropped
			row.CrashDropped += res.CrashDropped
			if res.RecoveredOK {
				row.Recovered++
			}
		}
		rows[pi] = row
	}
	return rows, nil
}

// FormatChaos renders the gauntlet outcome as a table.
func FormatChaos(rows []ChaosRow) string {
	var b strings.Builder
	b.WriteString("Chaos gauntlet: committed lines orphan-checked at every operating point\n")
	fmt.Fprintf(&b, "%-8s %-6s %-10s %-8s %-9s %-8s %-8s %-8s %-8s %-8s %-9s\n",
		"point", "seeds", "committed", "aborted", "timeouts", "retrans", "dupsup", "dropped", "partcut", "crashcut", "recovered")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-6d %-10d %-8d %-9d %-8d %-8d %-8d %-8d %-8d %-9d\n",
			r.Label, r.Seeds, r.Committed, r.Aborted, r.TimeoutAborts,
			r.Retransmissions, r.DupsSuppressed, r.Dropped, r.PartitionDropped, r.CrashDropped,
			r.Recovered)
	}
	return b.String()
}
