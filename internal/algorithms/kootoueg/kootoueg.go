// Package kootoueg implements the Koo–Toueg coordinated checkpointing
// algorithm ([19] in the paper): the blocking, minimum-process baseline of
// Table 1. Only processes in the initiator's transitive dependency closure
// take checkpoints, but every participant blocks its underlying
// computation from the moment it takes a tentative checkpoint until the
// commit/abort decision arrives, and requests are propagated to every
// dependency without suppression (message overhead 3·Nmin·Ndep·C_air).
package kootoueg

import (
	"errors"

	"mutablecp/internal/protocol"
	"mutablecp/internal/trace"
)

// ErrCheckpointInProgress is returned by Initiate when the process is
// already participating in an instance.
var ErrCheckpointInProgress = errors.New("kootoueg: checkpointing already in progress")

// Engine is the per-process Koo–Toueg state machine.
type Engine struct {
	env protocol.Env
	id  protocol.ProcessID
	n   int

	// recvSince[j] counts computation messages received from j since the
	// last stable checkpoint: the dependency set.
	recvSince []uint64
	// recvTotal[j] is the cumulative receive count from j; a request to j
	// carries it so j can tell whether its own last checkpoint already
	// records the sends we observed.
	recvTotal []uint64
	// sentAtCkpt[j] is the cumulative count of messages sent to j as of
	// this process's last stable checkpoint.
	sentAtCkpt []uint64
	sentTotal  []uint64

	inProgress bool
	trig       protocol.Trigger
	initiator  bool
	parent     protocol.ProcessID // who we inherited the request from
	children   []protocol.ProcessID
	awaiting   int
	tookCkpt   bool
	seq        int // per-process initiation counter for triggers
	ckpts      int // checkpoints taken (numbers this process's snapshots)

	// Saved at tentative-checkpoint time: what the checkpoint records
	// (committed into sentAtCkpt on commit) and the dependency counters it
	// cleared (restored on abort).
	pendingSentAtCkpt []uint64
	savedRecvSince    []uint64
}

var (
	_ protocol.Engine             = (*Engine)(nil)
	_ protocol.Blocking           = (*Engine)(nil)
	_ protocol.CheckpointRestorer = (*Engine)(nil)
)

// New returns a Koo–Toueg engine bound to env.
func New(env protocol.Env) *Engine {
	n := env.N()
	return &Engine{
		env:        env,
		id:         env.ID(),
		n:          n,
		recvSince:  make([]uint64, n),
		recvTotal:  make([]uint64, n),
		sentAtCkpt: make([]uint64, n),
		sentTotal:  make([]uint64, n),
		parent:     -1,
	}
}

// Name identifies the algorithm.
func (e *Engine) Name() string { return "koo-toueg" }

// BlocksComputation reports that this algorithm blocks.
func (e *Engine) BlocksComputation() bool { return true }

// InProgress reports whether the process is inside an instance.
func (e *Engine) InProgress() bool { return e.inProgress }

// OwnTrigger returns the trigger of the current/last instance.
func (e *Engine) OwnTrigger() protocol.Trigger { return e.trig }

// RestoreFromCheckpoint implements protocol.CheckpointRestorer: a
// rebuilt engine resumes its checkpoint and initiation numbering from
// the restored checkpoint's csn (dependency counters start empty — the
// restored state opens a fresh interval).
func (e *Engine) RestoreFromCheckpoint(csn int) {
	e.ckpts = csn
	e.seq = csn
	e.trig = protocol.Trigger{Pid: e.id, Inum: csn}
}

// PrepareSend stamps an outgoing computation message. Koo–Toueg needs no
// piggybacked control information; the runtime guarantees we are not
// blocked when this is called.
func (e *Engine) PrepareSend(m *protocol.Message) {
	m.Kind = protocol.KindComputation
	m.Trigger = protocol.NoTrigger
	e.sentTotal[m.To]++
}

// Initiate starts a two-phase checkpointing instance (first phase:
// tentative checkpoints down the dependency tree).
func (e *Engine) Initiate() error {
	if e.inProgress {
		return ErrCheckpointInProgress
	}
	e.seq++
	e.trig = protocol.Trigger{Pid: e.id, Inum: e.seq}
	e.inProgress = true
	e.initiator = true
	e.parent = -1
	e.env.Trace(trace.KindInitiate, -1, "trigger=%v", e.trig)
	e.takeTentative()
	e.sendRequests()
	if e.awaiting == 0 {
		e.decide(true)
	}
	return nil
}

// takeTentative writes the checkpoint and blocks the computation until the
// second-phase decision. The dependency counters reset here — messages
// received after this instant belong to the next checkpoint interval.
func (e *Engine) takeTentative() {
	st := e.env.CaptureState()
	e.ckpts++
	st.CSN = e.ckpts
	e.env.SaveTentative(st, e.trig)
	e.env.Trace(trace.KindTentative, -1, "trigger=%v", e.trig)
	e.tookCkpt = true
	e.pendingSentAtCkpt = append([]uint64(nil), e.sentTotal...)
	e.savedRecvSince = append([]uint64(nil), e.recvSince...)
	for i := range e.recvSince {
		e.recvSince[i] = 0
	}
	e.env.BlockApp()
}

// sendRequests asks every dependency (as of the tentative checkpoint just
// taken, i.e. savedRecvSince) to checkpoint, and records the children we
// must hear back from.
func (e *Engine) sendRequests() {
	e.children = e.children[:0]
	for j := 0; j < e.n; j++ {
		if j == e.id || e.savedRecvSince[j] == 0 {
			continue
		}
		e.children = append(e.children, j)
	}
	e.awaiting = len(e.children)
	for _, j := range e.children {
		e.env.Trace(trace.KindRequest, j, "trigger=%v expected=%d", e.trig, e.recvTotal[j])
		e.env.Send(&protocol.Message{
			Kind:    protocol.KindRequest,
			From:    e.id,
			To:      j,
			Trigger: e.trig,
			// ReqCSN carries the cumulative number of messages we have
			// received from j; j checkpoints iff its last checkpoint does
			// not record that many sends to us.
			ReqCSN: int(e.recvTotal[j]),
		})
	}
}

// HandleMessage dispatches one arriving message.
func (e *Engine) HandleMessage(m *protocol.Message) {
	switch m.Kind {
	case protocol.KindComputation:
		e.recvSince[m.From]++
		e.recvTotal[m.From]++
		e.env.Trace(trace.KindReceive, m.From, "")
		e.env.DeliverApp(m)
	case protocol.KindRequest:
		e.handleRequest(m)
	case protocol.KindReply:
		e.handleReply(m)
	case protocol.KindDecision:
		e.handleDecision(m)
	default:
	}
}

func (e *Engine) handleRequest(m *protocol.Message) {
	if e.inProgress && m.Trigger == e.trig {
		// Already participating in this instance: nothing more to do.
		e.replyTo(m.From, m.Trigger, true)
		return
	}
	if e.inProgress && m.Trigger != e.trig {
		// Concurrent initiation: refuse, aborting the other instance
		// (the paper's §3.5 note on [19]'s handling).
		e.replyTo(m.From, m.Trigger, false)
		return
	}
	// Does our last checkpoint already record every send the requester has
	// seen from us?
	if e.sentAtCkpt[m.From] >= uint64(m.ReqCSN) {
		e.replyTo(m.From, m.Trigger, true)
		return
	}
	e.inProgress = true
	e.initiator = false
	e.trig = m.Trigger
	e.parent = m.From
	e.takeTentative()
	e.sendRequests()
	if e.awaiting == 0 {
		e.replyTo(e.parent, e.trig, true)
	}
}

// replyTo answers a request for the given instance; ok=false propagates a
// refusal.
func (e *Engine) replyTo(to protocol.ProcessID, trig protocol.Trigger, ok bool) {
	e.env.Trace(trace.KindReply, to, "ok=%v", ok)
	e.env.Send(&protocol.Message{
		Kind:    protocol.KindReply,
		From:    e.id,
		To:      to,
		Trigger: trig,
		Commit:  ok,
	})
}

func (e *Engine) handleReply(m *protocol.Message) {
	if !e.inProgress || m.Trigger != e.trig {
		return
	}
	if !m.Commit {
		// A subtree refused: abort the whole instance.
		if e.initiator {
			e.decide(false)
		} else if e.parent >= 0 {
			e.replyTo(e.parent, e.trig, false)
		}
		return
	}
	e.awaiting--
	if e.awaiting > 0 {
		return
	}
	if e.initiator {
		e.decide(true)
		return
	}
	e.replyTo(e.parent, e.trig, true)
}

// decide is the initiator's second phase: propagate commit/abort down the
// tree and apply it locally.
func (e *Engine) decide(commit bool) {
	e.propagateDecision(commit)
	e.applyDecision(commit)
	e.env.CheckpointingDone(e.trig, commit)
}

func (e *Engine) propagateDecision(commit bool) {
	for _, j := range e.children {
		e.env.Send(&protocol.Message{
			Kind:    protocol.KindDecision,
			From:    e.id,
			To:      j,
			Trigger: e.trig,
			Commit:  commit,
		})
	}
}

func (e *Engine) handleDecision(m *protocol.Message) {
	if !e.inProgress || m.Trigger != e.trig {
		return
	}
	e.propagateDecision(m.Commit)
	e.applyDecision(m.Commit)
}

func (e *Engine) applyDecision(commit bool) {
	trig := e.trig
	if e.tookCkpt {
		if commit {
			e.env.MakePermanent(trig)
			e.env.Trace(trace.KindPermanent, -1, "trigger=%v", trig)
			copy(e.sentAtCkpt, e.pendingSentAtCkpt)
		} else {
			e.env.DropTentative(trig)
			e.env.Trace(trace.KindAbort, -1, "drop trigger=%v", trig)
			// The checkpoint evaporated: its interval merges back.
			for i, v := range e.savedRecvSince {
				e.recvSince[i] += v
			}
		}
	}
	e.tookCkpt = false
	e.inProgress = false
	e.initiator = false
	e.parent = -1
	e.children = e.children[:0]
	e.awaiting = 0
	e.env.UnblockApp()
	if commit {
		e.env.Trace(trace.KindCommit, -1, "trigger=%v", trig)
	}
}
