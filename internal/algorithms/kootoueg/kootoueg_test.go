package kootoueg_test

import (
	"fmt"
	"testing"

	"mutablecp/internal/algorithms/kootoueg"
	"mutablecp/internal/consistency"
	"mutablecp/internal/enginetest"
	"mutablecp/internal/protocol"
	"mutablecp/internal/xrand"
)

func newWorld(t *testing.T, n int) *enginetest.World {
	return enginetest.NewWorld(t, n, func(env protocol.Env) protocol.Engine {
		return kootoueg.New(env)
	})
}

func TestNoDependenciesCommitsAlone(t *testing.T) {
	w := newWorld(t, 3)
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	if w.Envs[0].DoneCount != 1 || !w.Envs[0].LastCommitted {
		t.Fatal("lonely initiator did not commit immediately")
	}
	if w.Envs[0].Blocked {
		t.Fatal("still blocked after decision")
	}
	if err := consistency.Check(w.Line()); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksUntilDecision(t *testing.T) {
	w := newWorld(t, 2)
	w.Deliver(w.Send(1, 0))
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	if !w.Envs[0].Blocked {
		t.Fatal("initiator not blocked during first phase")
	}
	// Deliver the request: P1 checkpoints and blocks too.
	if m := w.DeliverMatching(func(m *protocol.Message) bool { return m.Kind == protocol.KindRequest }); m == nil {
		t.Fatal("no request")
	}
	if !w.Envs[1].Blocked {
		t.Fatal("participant not blocked")
	}
	w.Pump()
	if w.Envs[0].Blocked || w.Envs[1].Blocked {
		t.Fatal("blocking not lifted by the decision")
	}
	if !w.Envs[0].LastCommitted {
		t.Fatal("did not commit")
	}
	if err := consistency.Check(w.Line()); err != nil {
		t.Fatal(err)
	}
}

func TestDependencyTreePropagation(t *testing.T) {
	// Chain: P2 -> P1 -> P0; initiating at P0 must checkpoint all three.
	w := newWorld(t, 3)
	w.Deliver(w.Send(2, 1))
	w.Deliver(w.Send(1, 0))
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	w.Pump()
	for i := 0; i < 3; i++ {
		if w.Envs[i].TentativeTaken != 1 {
			t.Fatalf("P%d tentative = %d, want 1", i, w.Envs[i].TentativeTaken)
		}
		if len(w.Envs[i].Stable.History()) != 2 {
			t.Fatalf("P%d checkpoint not committed", i)
		}
	}
	if err := consistency.Check(w.Line()); err != nil {
		t.Fatal(err)
	}
}

func TestCoveredDependencySkipsCheckpoint(t *testing.T) {
	// P1's send to P0 is already recorded in P1's last committed
	// checkpoint, so a request must not force a new one.
	w := newWorld(t, 2)
	w.Deliver(w.Send(1, 0))
	// First instance from P1 itself records the send.
	if err := w.Engines[1].Initiate(); err != nil {
		t.Fatal(err)
	}
	w.Pump()
	if w.Envs[1].TentativeTaken != 1 {
		t.Fatal("P1 did not checkpoint its own instance")
	}
	// Now P0 initiates; its dependency on P1 is covered.
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	w.Pump()
	if w.Envs[1].TentativeTaken != 1 {
		t.Fatalf("P1 took an unnecessary checkpoint (total %d)", w.Envs[1].TentativeTaken)
	}
	if !w.Envs[0].LastCommitted {
		t.Fatal("P0's instance did not commit")
	}
	if err := consistency.Check(w.Line()); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInitiationRefused(t *testing.T) {
	// Two initiators overlapping: the request into a busy process is
	// refused and that instance aborts (Koo–Toueg semantics).
	w := newWorld(t, 4)
	w.Deliver(w.Send(1, 0)) // P0 depends on P1
	w.Deliver(w.Send(1, 2)) // P2 depends on P1
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	// P1 joins P0's instance.
	if m := w.DeliverMatching(func(m *protocol.Message) bool {
		return m.Kind == protocol.KindRequest && m.To == 1
	}); m == nil {
		t.Fatal("no request to P1")
	}
	// P2 initiates while P1 is busy.
	if err := w.Engines[2].Initiate(); err != nil {
		t.Fatal(err)
	}
	w.Pump()
	if !w.Envs[0].LastCommitted {
		t.Fatal("P0's instance should commit")
	}
	if w.Envs[2].LastCommitted {
		t.Fatal("P2's instance should abort after P1's refusal")
	}
	if len(w.Envs[2].Stable.History()) != 1 {
		t.Fatal("P2's aborted tentative was committed")
	}
	if w.Envs[2].Blocked {
		t.Fatal("P2 still blocked after abort")
	}
	if err := consistency.Check(w.Line()); err != nil {
		t.Fatal(err)
	}
	// P2 can retry successfully afterwards.
	if err := w.Engines[2].Initiate(); err != nil {
		t.Fatal(err)
	}
	w.Pump()
	if !w.Envs[2].LastCommitted {
		t.Fatal("P2's retry did not commit")
	}
}

func TestDiamondDependencyNoDeadlock(t *testing.T) {
	// P0 depends on P1 and P2; both depend on P3. P3 gets two requests:
	// the tree must still terminate with single checkpoints.
	w := newWorld(t, 4)
	w.Deliver(w.Send(3, 1))
	w.Deliver(w.Send(3, 2))
	w.Deliver(w.Send(1, 0))
	w.Deliver(w.Send(2, 0))
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	w.Pump()
	if !w.Envs[0].LastCommitted {
		t.Fatal("diamond instance did not commit")
	}
	for i := 0; i < 4; i++ {
		if got := w.Envs[i].TentativeTaken; got != 1 {
			t.Fatalf("P%d tentative = %d, want 1", i, got)
		}
	}
	if err := consistency.Check(w.Line()); err != nil {
		t.Fatal(err)
	}
}

func TestCycleNoDeadlock(t *testing.T) {
	// Mutual dependency P0 <-> P1 must not deadlock the wait-for-replies
	// logic.
	w := newWorld(t, 2)
	w.Deliver(w.Send(0, 1))
	w.Deliver(w.Send(1, 0))
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	w.Pump()
	if !w.Envs[0].LastCommitted {
		t.Fatal("cyclic instance did not commit")
	}
	if err := consistency.Check(w.Line()); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedConsistencyAndTermination(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := xrand.New(seed * 17)
			w := newWorld(t, 5)
			for round := 0; round < 6; round++ {
				for s := 0; s < 12; s++ {
					from := rng.Intn(w.N)
					if w.Envs[from].Blocked {
						continue
					}
					to := rng.Intn(w.N - 1)
					if to >= from {
						to++
					}
					w.Send(from, to)
					for len(w.Queue) > 0 && rng.Float64() < 0.5 {
						w.Deliver(w.Queue[0])
					}
				}
				w.Pump() // Koo–Toueg assumes quiesced instances here
				init := rng.Intn(w.N)
				if err := w.Engines[init].Initiate(); err != nil {
					continue
				}
				w.Pump()
				if w.Envs[init].DoneCount == 0 {
					t.Fatalf("round %d: no termination", round)
				}
				if err := consistency.Check(w.Line()); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				for i := 0; i < w.N; i++ {
					if w.Envs[i].Blocked {
						t.Fatalf("round %d: P%d left blocked", round, i)
					}
				}
			}
		})
	}
}
