// Package naive implements the strawman checkpointing schemes of §3.1.1,
// used as ablations against the mutable-checkpoint algorithm:
//
//   - ModeSimple: a process checkpoints to stable storage whenever it
//     receives a computation message with a csn larger than expected. This
//     is the "basic scheme" whose induced checkpoints cascade (the
//     avalanche effect).
//   - ModeRevised: as ModeSimple, but only if the process has sent a
//     message in its current checkpoint interval (the paper's first
//     refinement; it still avalanches).
//   - ModeNoCSN: no csn piggybacking at all — the broken design of Fig. 1
//     that records orphan messages. It exists so tests can demonstrate the
//     inconsistency the csn machinery prevents.
//
// Unlike the paper's full algorithm, induced checkpoints here are real
// stable-storage checkpoints: that is exactly the overhead mutable
// checkpoints were invented to avoid, and what the ablation measures.
package naive

import (
	"errors"

	"mutablecp/internal/dyadic"
	"mutablecp/internal/protocol"
	"mutablecp/internal/trace"
)

// Mode selects the strawman variant.
type Mode int

// Strawman variants.
const (
	ModeSimple Mode = iota + 1
	ModeRevised
	ModeNoCSN
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeSimple:
		return "naive-simple"
	case ModeRevised:
		return "naive-revised"
	case ModeNoCSN:
		return "naive-nocsn"
	default:
		return "naive?"
	}
}

// ErrCheckpointInProgress is returned by Initiate when an initiated
// instance has not terminated yet.
var ErrCheckpointInProgress = errors.New("naive: checkpointing already in progress")

// Engine is the per-process strawman state machine. Checkpoints become
// permanent immediately (these schemes predate two-phase refinement); the
// weight machinery is used only so the harness can detect when the
// initiator's request tree has quiesced.
type Engine struct {
	env  protocol.Env
	mode Mode
	id   protocol.ProcessID
	n    int

	csn    []int
	r      []bool
	sent   bool
	oldCSN int

	lastTrig protocol.Trigger // last initiation this process checkpointed for

	initiating bool
	trig       protocol.Trigger
	weight     dyadic.Weight
}

var _ protocol.Engine = (*Engine)(nil)

// New returns a strawman engine in the given mode.
func New(env protocol.Env, mode Mode) *Engine {
	n := env.N()
	return &Engine{
		env:      env,
		mode:     mode,
		id:       env.ID(),
		n:        n,
		csn:      make([]int, n),
		r:        make([]bool, n),
		lastTrig: protocol.NoTrigger,
	}
}

// Name identifies the variant.
func (e *Engine) Name() string { return e.mode.String() }

// InProgress reports whether this process's own initiation is running.
func (e *Engine) InProgress() bool { return e.initiating }

// OwnTrigger returns the trigger of the current/last own initiation.
func (e *Engine) OwnTrigger() protocol.Trigger { return e.trig }

// PrepareSend piggybacks the csn (except in ModeNoCSN).
func (e *Engine) PrepareSend(m *protocol.Message) {
	m.Kind = protocol.KindComputation
	m.Trigger = e.lastTrig
	if e.mode != ModeNoCSN {
		m.CSN = e.csn[e.id]
	}
	e.sent = true
}

// Initiate starts an instance rooted at this process.
func (e *Engine) Initiate() error {
	if e.initiating {
		return ErrCheckpointInProgress
	}
	e.initiating = true
	e.trig = protocol.Trigger{Pid: e.id, Inum: e.csn[e.id] + 1}
	e.env.Trace(trace.KindInitiate, -1, "trigger=%v", e.trig)
	e.weight = e.checkpointAndPropagate(e.trig, dyadic.One())
	e.maybeDone()
	return nil
}

// takeCheckpoint writes (and immediately commits) one stable checkpoint.
func (e *Engine) takeCheckpoint(trig protocol.Trigger) {
	e.csn[e.id]++
	st := e.env.CaptureState()
	st.CSN = e.csn[e.id]
	e.env.SaveTentative(st, trig)
	e.env.MakePermanent(trig)
	e.env.Trace(trace.KindTentative, -1, "csn=%d trigger=%v", st.CSN, trig)
	e.oldCSN = e.csn[e.id]
	e.lastTrig = trig
}

// checkpointAndPropagate takes a stable checkpoint and asks the current
// dependency set to checkpoint too, splitting w among the requests. It
// returns the retained weight.
func (e *Engine) checkpointAndPropagate(trig protocol.Trigger, w dyadic.Weight) dyadic.Weight {
	e.takeCheckpoint(trig)

	deps := make([]protocol.ProcessID, 0, e.n)
	for k := 0; k < e.n; k++ {
		if k != e.id && e.r[k] {
			deps = append(deps, k)
		}
	}
	e.sent = false
	for i := range e.r {
		e.r[i] = false
	}
	for _, k := range deps {
		w = w.Half()
		e.env.Trace(trace.KindRequest, k, "trigger=%v", trig)
		e.env.Send(&protocol.Message{
			Kind:    protocol.KindRequest,
			From:    e.id,
			To:      k,
			CSN:     e.csn[e.id],
			Trigger: trig,
			ReqCSN:  e.csn[k],
			Weight:  w,
		})
	}
	return w
}

// HandleMessage dispatches one arriving message.
func (e *Engine) HandleMessage(m *protocol.Message) {
	switch m.Kind {
	case protocol.KindComputation:
		e.handleComputation(m)
	case protocol.KindRequest:
		e.handleRequest(m)
	case protocol.KindReply:
		e.credit(m.Trigger, m.Weight)
	default:
	}
}

func (e *Engine) handleComputation(m *protocol.Message) {
	e.env.Trace(trace.KindReceive, m.From, "csn=%d", m.CSN)
	if e.mode != ModeNoCSN && m.CSN > e.csn[m.From] {
		e.csn[m.From] = m.CSN
		induced := e.mode == ModeSimple || (e.mode == ModeRevised && e.sent)
		if induced {
			// The avalanche step: a stable checkpoint (plus a fresh round
			// of requests) forced by a computation message.
			e.checkpointAndPropagate(m.Trigger, dyadic.Zero())
		}
	}
	e.r[m.From] = true
	e.env.DeliverApp(m)
}

func (e *Engine) handleRequest(m *protocol.Message) {
	e.csn[m.From] = m.CSN
	retained := dyadic.Zero()
	switch {
	case e.mode == ModeNoCSN:
		// Fig. 1's broken design: checkpoint on request, nothing more —
		// no csn bookkeeping, no propagation. The initiator alone asks
		// its direct dependents, which is exactly what lets the m1
		// interleaving create an orphan.
		e.takeCheckpoint(m.Trigger)
		retained = m.Weight
	case e.oldCSN <= m.ReqCSN:
		retained = e.checkpointAndPropagate(m.Trigger, m.Weight)
	default:
		retained = m.Weight
	}
	if m.Weight.IsZero() {
		return // fire-and-forget cascade request
	}
	initiator := m.Trigger.Pid
	if initiator == e.id {
		e.credit(m.Trigger, retained)
		return
	}
	e.env.Send(&protocol.Message{
		Kind:    protocol.KindReply,
		From:    e.id,
		To:      initiator,
		Trigger: m.Trigger,
		Weight:  retained,
	})
}

func (e *Engine) credit(trig protocol.Trigger, w dyadic.Weight) {
	if !e.initiating || trig != e.trig {
		return
	}
	e.weight = e.weight.Add(w)
	e.maybeDone()
}

func (e *Engine) maybeDone() {
	if !e.initiating || !e.weight.IsOne() {
		return
	}
	e.initiating = false
	e.weight = dyadic.Zero()
	e.env.Trace(trace.KindCommit, -1, "trigger=%v", e.trig)
	e.env.CheckpointingDone(e.trig, true)
}
