package naive_test

import (
	"testing"

	"mutablecp/internal/algorithms/naive"
	"mutablecp/internal/consistency"
	"mutablecp/internal/enginetest"
	"mutablecp/internal/protocol"
)

func newWorld(t *testing.T, mode naive.Mode) *enginetest.World {
	return enginetest.NewWorld(t, 4, func(env protocol.Env) protocol.Engine {
		return naive.New(env, mode)
	})
}

// TestFig1NoCSNProducesOrphan reproduces the paper's Fig. 1: without csn
// piggybacking, the interleaving where P1 checkpoints and then sends m1 to
// P3 — which P3 processes before its own request arrives — records m1's
// receive without its send: an orphan.
func TestFig1NoCSNProducesOrphan(t *testing.T) {
	w := newWorld(t, naive.ModeNoCSN)
	p1, p2, p3 := 0, 1, 2

	// P2 depends on P1 and P3.
	w.Deliver(w.Send(p1, p2))
	w.Deliver(w.Send(p3, p2))

	if err := w.Engines[p2].Initiate(); err != nil {
		t.Fatal(err)
	}
	// Request reaches P1 first; P1 checkpoints, then sends m1 to P3.
	if m := w.DeliverMatching(func(m *protocol.Message) bool {
		return m.Kind == protocol.KindRequest && m.To == p1
	}); m == nil {
		t.Fatal("no request to P1")
	}
	m1 := w.Send(p1, p3)
	w.Deliver(m1) // P3 processes m1 before its request
	w.Pump()      // request to P3 arrives; P3 checkpoints with m1 recorded

	err := consistency.Check(w.Line())
	if err == nil {
		t.Fatal("Fig. 1 interleaving did not produce an orphan — the broken scheme looks correct")
	}
	var ie *consistency.InconsistencyError
	if !asInconsistency(err, &ie) {
		t.Fatalf("unexpected error type: %v", err)
	}
	found := false
	for _, o := range ie.Orphans {
		if o.Sender == p1 && o.Receiver == p3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected orphan P1->P3, got %v", ie.Orphans)
	}
}

func asInconsistency(err error, out **consistency.InconsistencyError) bool {
	ie, ok := err.(*consistency.InconsistencyError)
	if ok {
		*out = ie
	}
	return ok
}

// TestSimpleSchemeCheckpointsOnHigherCSN: ModeSimple takes a stable
// checkpoint whenever a higher csn arrives, even with nothing sent.
func TestSimpleSchemeCheckpointsOnHigherCSN(t *testing.T) {
	w := newWorld(t, naive.ModeSimple)
	// P0 initiates alone (csn 1).
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	w.Pump()
	if w.Envs[0].TentativeTaken != 1 {
		t.Fatal("initiator did not checkpoint")
	}
	// P0 sends to P1: higher csn forces a stable checkpoint at P1 even
	// though P1 never sent anything.
	w.Deliver(w.Send(0, 1))
	if w.Envs[1].TentativeTaken != 1 {
		t.Fatalf("P1 tentative = %d, want 1 (simple scheme)", w.Envs[1].TentativeTaken)
	}
}

// TestRevisedSchemeRequiresSentFlag: ModeRevised checkpoints only when the
// receiver sent a message in its current interval (the paper's first
// refinement).
func TestRevisedSchemeRequiresSentFlag(t *testing.T) {
	w := newWorld(t, naive.ModeRevised)
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	w.Pump()
	// P1 has sent nothing: no checkpoint on higher csn.
	w.Deliver(w.Send(0, 1))
	if w.Envs[1].TentativeTaken != 0 {
		t.Fatalf("P1 tentative = %d, want 0 (nothing sent)", w.Envs[1].TentativeTaken)
	}
	// P2 sent this interval: it must checkpoint.
	w.Deliver(w.Send(2, 3))
	w.Deliver(w.Send(0, 2))
	if w.Envs[2].TentativeTaken != 1 {
		t.Fatalf("P2 tentative = %d, want 1 (sent flag set)", w.Envs[2].TentativeTaken)
	}
}

// TestAvalancheCascade: in the simple scheme an induced checkpoint raises
// the taker's csn, so its next message induces another checkpoint
// downstream — the cascade the mutable scheme eliminates.
func TestAvalancheCascade(t *testing.T) {
	w := newWorld(t, naive.ModeSimple)
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	w.Pump()
	// P0 -> P1 induces a checkpoint at P1 (csn 1 -> P1 checkpoints, its
	// own csn becomes 1).
	w.Deliver(w.Send(0, 1))
	// P1 -> P2 now induces a checkpoint at P2 purely because of the
	// cascade.
	w.Deliver(w.Send(1, 2))
	if w.Envs[2].TentativeTaken != 1 {
		t.Fatalf("cascade did not propagate: P2 tentative = %d", w.Envs[2].TentativeTaken)
	}
	// And P2 -> P3 keeps it going.
	w.Deliver(w.Send(2, 3))
	if w.Envs[3].TentativeTaken != 1 {
		t.Fatalf("cascade did not reach P3: %d", w.Envs[3].TentativeTaken)
	}
	w.Pump()
}

// TestSimpleSchemeStillConsistent: the simple scheme is wasteful but not
// incorrect — its csn rule prevents orphans in the Fig. 1 interleaving.
func TestSimpleSchemeConsistentOnFig1(t *testing.T) {
	w := newWorld(t, naive.ModeSimple)
	p1, p2, p3 := 0, 1, 2
	w.Deliver(w.Send(p1, p2))
	w.Deliver(w.Send(p3, p2))
	if err := w.Engines[p2].Initiate(); err != nil {
		t.Fatal(err)
	}
	if m := w.DeliverMatching(func(m *protocol.Message) bool {
		return m.Kind == protocol.KindRequest && m.To == p1
	}); m == nil {
		t.Fatal("no request to P1")
	}
	m1 := w.Send(p1, p3)
	w.Deliver(m1)
	w.Pump()
	if err := consistency.Check(w.Line()); err != nil {
		t.Fatalf("simple scheme produced an orphan: %v", err)
	}
}

// TestInitiationTerminates: the weighted request tree of an initiation
// terminates and reports completion.
func TestInitiationTerminates(t *testing.T) {
	for _, mode := range []naive.Mode{naive.ModeSimple, naive.ModeRevised, naive.ModeNoCSN} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			w := newWorld(t, mode)
			w.Deliver(w.Send(1, 0))
			w.Deliver(w.Send(2, 1))
			if err := w.Engines[0].Initiate(); err != nil {
				t.Fatal(err)
			}
			w.Pump()
			if w.Envs[0].DoneCount != 1 {
				t.Fatal("initiation did not terminate")
			}
			if err := w.Engines[0].Initiate(); err != nil {
				t.Fatal("cannot re-initiate after completion")
			}
			w.Pump()
		})
	}
}

func TestModeStrings(t *testing.T) {
	if naive.ModeSimple.String() != "naive-simple" ||
		naive.ModeRevised.String() != "naive-revised" ||
		naive.ModeNoCSN.String() != "naive-nocsn" {
		t.Fatal("mode names")
	}
	if naive.Mode(0).String() != "naive?" {
		t.Fatal("unknown mode name")
	}
}
