// Package chandylamport implements the Chandy–Lamport distributed
// snapshot algorithm ([9] in the paper's related work): the earliest
// nonblocking coordinated checkpointing algorithm. Markers flood every
// FIFO channel, all N processes record their state, and each process also
// records per-channel in-transit messages. Message complexity is O(N²) —
// the cost the paper's algorithm avoids.
package chandylamport

import (
	"errors"

	"mutablecp/internal/protocol"
	"mutablecp/internal/trace"
)

// ErrSnapshotInProgress is returned by Initiate while a snapshot this
// process started is still incomplete.
var ErrSnapshotInProgress = errors.New("chandylamport: snapshot already in progress")

// roundTrigger names snapshot round r, collected by process pid.
func roundTrigger(pid protocol.ProcessID, r int) protocol.Trigger {
	return protocol.Trigger{Pid: pid, Inum: r}
}

// Engine is the per-process Chandy–Lamport state machine. It assumes (as
// the original algorithm does) that snapshots are initiated one at a time.
type Engine struct {
	env protocol.Env
	id  protocol.ProcessID
	n   int

	round     int // highest snapshot round seen
	collector protocol.ProcessID
	recording bool
	markersIn int
	pending   bool
	pendTrig  protocol.Trigger

	// channelRecording[j] is true while we record channel j->me (between
	// our snapshot and j's marker).
	channelRecording []bool
	// ChannelCounts[j] counts in-transit messages recorded on channel
	// j->me in the current round.
	ChannelCounts []int

	initiating bool
	doneAcks   int
}

var (
	_ protocol.Engine   = (*Engine)(nil)
	_ protocol.Blocking = (*Engine)(nil)
)

// New returns a Chandy–Lamport engine bound to env.
func New(env protocol.Env) *Engine {
	n := env.N()
	return &Engine{
		env:              env,
		id:               env.ID(),
		n:                n,
		channelRecording: make([]bool, n),
		ChannelCounts:    make([]int, n),
		pendTrig:         protocol.NoTrigger,
	}
}

// Name identifies the algorithm.
func (e *Engine) Name() string { return "chandy-lamport" }

// BlocksComputation reports that this algorithm never blocks.
func (e *Engine) BlocksComputation() bool { return false }

// InProgress reports whether a snapshot is being recorded here.
func (e *Engine) InProgress() bool { return e.recording || e.initiating }

// OwnTrigger returns the trigger of the round this process initiated.
func (e *Engine) OwnTrigger() protocol.Trigger { return roundTrigger(e.collector, e.round) }

// PrepareSend stamps an outgoing computation message (no piggyback needed;
// markers carry all control information).
func (e *Engine) PrepareSend(m *protocol.Message) {
	m.Kind = protocol.KindComputation
	m.Trigger = protocol.NoTrigger
}

// Initiate starts a snapshot: record local state and flood markers.
func (e *Engine) Initiate() error {
	if e.InProgress() {
		return ErrSnapshotInProgress
	}
	e.initiating = true
	e.doneAcks = 0
	e.startRecording(e.round+1, e.id)
	return nil
}

// startRecording takes the local checkpoint for the round and sends a
// marker on every outgoing channel.
func (e *Engine) startRecording(round int, collector protocol.ProcessID) {
	e.round = round
	e.collector = collector
	e.recording = true
	e.markersIn = 0
	trig := roundTrigger(collector, round)
	e.env.Trace(trace.KindInitiate, -1, "round=%d", round)
	st := e.env.CaptureState()
	st.CSN = round
	e.env.SaveTentative(st, trig)
	e.env.Trace(trace.KindTentative, -1, "round=%d", round)
	e.pending = true
	e.pendTrig = trig
	for j := 0; j < e.n; j++ {
		e.channelRecording[j] = j != e.id
		e.ChannelCounts[j] = 0
	}
	for j := 0; j < e.n; j++ {
		if j == e.id {
			continue
		}
		e.env.Send(&protocol.Message{
			Kind:    protocol.KindMarker,
			From:    e.id,
			To:      j,
			CSN:     round,
			Trigger: trig,
		})
	}
}

// HandleMessage dispatches one arriving message.
func (e *Engine) HandleMessage(m *protocol.Message) {
	switch m.Kind {
	case protocol.KindComputation:
		if e.recording && e.channelRecording[m.From] {
			e.ChannelCounts[m.From]++
		}
		e.env.DeliverApp(m)
	case protocol.KindMarker:
		e.handleMarker(m)
	case protocol.KindReply: // completion report to the initiator
		if !e.initiating {
			return
		}
		e.doneAcks++
		if e.doneAcks == e.n-1 {
			e.finish()
		}
	case protocol.KindCommit:
		e.applyCommit()
	default:
	}
}

func (e *Engine) handleMarker(m *protocol.Message) {
	if m.CSN > e.round {
		// First marker of a new round: record state; the channel the
		// marker arrived on is empty past this point.
		e.startRecording(m.CSN, m.Trigger.Pid)
	}
	if m.CSN < e.round || !e.recording {
		return
	}
	e.channelRecording[m.From] = false
	e.markersIn++
	if e.markersIn < e.n-1 {
		return
	}
	// All incoming channels recorded: this process is done.
	e.recording = false
	e.env.Trace(trace.KindNote, -1, "round=%d channels recorded", e.round)
	if e.initiating {
		if e.doneAcks == e.n-1 {
			e.finish()
		}
		return
	}
	// Report completion to the round's collector (the initiator), which
	// commits once every process has recorded all its channels.
	e.env.Send(&protocol.Message{
		Kind:    protocol.KindReply,
		From:    e.id,
		To:      e.collector,
		Trigger: roundTrigger(e.collector, e.round),
	})
}

// finish commits the round: every process turns its recorded state
// permanent.
func (e *Engine) finish() {
	e.initiating = false
	trig := roundTrigger(e.collector, e.round)
	e.env.Trace(trace.KindCommit, -1, "round=%d", e.round)
	e.env.Broadcast(&protocol.Message{
		Kind:    protocol.KindCommit,
		From:    e.id,
		Trigger: trig,
	})
	e.applyCommit()
	e.env.CheckpointingDone(trig, true)
}

func (e *Engine) applyCommit() {
	if !e.pending {
		return
	}
	e.env.MakePermanent(e.pendTrig)
	e.env.Trace(trace.KindPermanent, -1, "round=%d", e.round)
	e.pending = false
	e.pendTrig = protocol.NoTrigger
}
