package chandylamport_test

import (
	"fmt"
	"testing"

	"mutablecp/internal/algorithms/chandylamport"
	"mutablecp/internal/consistency"
	"mutablecp/internal/enginetest"
	"mutablecp/internal/protocol"
	"mutablecp/internal/xrand"
)

func newWorld(t *testing.T, n int) *enginetest.World {
	return enginetest.NewWorld(t, n, func(env protocol.Env) protocol.Engine {
		return chandylamport.New(env)
	})
}

func TestSnapshotAllProcesses(t *testing.T) {
	w := newWorld(t, 4)
	if err := w.Engines[2].Initiate(); err != nil {
		t.Fatal(err)
	}
	w.Pump()
	if !w.Envs[2].LastCommitted {
		t.Fatal("snapshot did not complete")
	}
	for i := 0; i < 4; i++ {
		if w.Envs[i].TentativeTaken != 1 {
			t.Fatalf("P%d recorded %d states, want 1", i, w.Envs[i].TentativeTaken)
		}
	}
	if err := consistency.Check(w.Line()); err != nil {
		t.Fatal(err)
	}
}

func TestMarkerComplexityQuadratic(t *testing.T) {
	n := 6
	w := newWorld(t, n)
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	markers := 0
	for {
		m := w.DeliverMatching(func(m *protocol.Message) bool { return true })
		if m == nil {
			break
		}
		if m.Kind == protocol.KindMarker {
			markers++
		}
	}
	if markers != n*(n-1) {
		t.Fatalf("markers = %d, want N(N-1) = %d", markers, n*(n-1))
	}
}

func TestChannelStateRecordsInTransit(t *testing.T) {
	// A message in flight from P1 to P0 when the snapshot starts must be
	// recorded as channel state at P0 (received after P0's snapshot,
	// before P1's marker).
	w := newWorld(t, 3)
	inflight := w.Send(1, 0)
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	// Deliver the in-flight computation message before P1's marker
	// reaches P0 — it must land in the recorded channel state.
	w.Deliver(inflight)
	w.Pump()
	eng := w.Engines[0].(*chandylamport.Engine)
	if got := eng.ChannelCounts[1]; got != 1 {
		t.Fatalf("channel P1->P0 recorded %d messages, want 1", got)
	}
	if got := eng.ChannelCounts[2]; got != 0 {
		t.Fatalf("channel P2->P0 recorded %d, want 0", got)
	}
	// The line alone is consistent; the in-transit message is channel
	// state, exactly what InTransit computes.
	transit, err := consistency.InTransit(w.Line())
	if err != nil {
		t.Fatal(err)
	}
	if transit[[2]protocol.ProcessID{1, 0}] != 1 {
		t.Fatalf("in-transit map = %v", transit)
	}
}

func TestMessageAfterMarkerNotRecorded(t *testing.T) {
	w := newWorld(t, 2)
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	// P1 receives the marker first (snapshots), then sends to P0; P0 has
	// already received P1's marker by then, so nothing is recorded on the
	// channel.
	if m := w.DeliverMatching(func(m *protocol.Message) bool { return m.Kind == protocol.KindMarker }); m == nil {
		t.Fatal("no marker")
	}
	if m := w.DeliverMatching(func(m *protocol.Message) bool { return m.Kind == protocol.KindMarker }); m == nil {
		t.Fatal("no return marker")
	}
	late := w.Send(1, 0)
	w.Deliver(late)
	w.Pump()
	eng := w.Engines[0].(*chandylamport.Engine)
	if got := eng.ChannelCounts[1]; got != 0 {
		t.Fatalf("post-marker message recorded in channel state (%d)", got)
	}
}

func TestRandomizedSnapshotConsistency(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := xrand.New(seed * 3)
			w := newWorld(t, 5)
			for round := 0; round < 4; round++ {
				for s := 0; s < 10; s++ {
					from := rng.Intn(w.N)
					to := rng.Intn(w.N - 1)
					if to >= from {
						to++
					}
					w.Send(from, to)
					for len(w.Queue) > 0 && rng.Float64() < 0.4 {
						w.Deliver(w.Queue[0])
					}
				}
				init := rng.Intn(w.N)
				if w.Engines[init].InProgress() {
					w.Pump()
				}
				if err := w.Engines[init].Initiate(); err != nil {
					w.Pump()
					continue
				}
				w.Pump()
				if err := consistency.Check(w.Line()); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
		})
	}
}
