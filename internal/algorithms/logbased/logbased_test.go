package logbased_test

import (
	"testing"

	"mutablecp/internal/algorithms/logbased"
	"mutablecp/internal/enginetest"
	"mutablecp/internal/protocol"
)

func newWorld(t *testing.T, n int) *enginetest.World {
	return enginetest.NewWorld(t, n, func(env protocol.Env) protocol.Engine {
		return logbased.New(env)
	})
}

func TestInitiateCommitsImmediately(t *testing.T) {
	w := newWorld(t, 3)
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	// No pump needed: the commit is synchronous and message-free.
	if got := w.Envs[0].Stable.Permanent().State.CSN; got != 1 {
		t.Fatalf("P0 permanent csn = %d, want 1", got)
	}
	if !w.Envs[0].LastCommitted {
		t.Fatal("initiation did not report committed")
	}
	if w.Engines[0].InProgress() {
		t.Fatal("independent checkpoint left an instance in flight")
	}
	for i := 0; i < 3; i++ {
		if got := w.Envs[i].SysSent; got != 0 {
			t.Fatalf("P%d sent %d system messages, want 0", i, got)
		}
	}
	// Peers are untouched: no coordination.
	for i := 1; i < 3; i++ {
		if got := w.Envs[i].TentativeTaken; got != 0 {
			t.Fatalf("P%d tentative = %d, want 0 (independent checkpointing)", i, got)
		}
	}
}

func TestCheckpointsAreIndependent(t *testing.T) {
	w := newWorld(t, 3)
	// Traffic crossing a checkpoint is fine: consistency is the recovery
	// executor's job, not the checkpoint's.
	m := w.Send(0, 1)
	w.Deliver(m)
	if err := w.Engines[1].Initiate(); err != nil {
		t.Fatal(err)
	}
	if err := w.Engines[1].Initiate(); err != nil {
		t.Fatal(err)
	}
	if got := w.Envs[1].Stable.Permanent().State.CSN; got != 2 {
		t.Fatalf("P1 permanent csn = %d, want 2", got)
	}
	if got := w.Envs[1].Stable.Permanent().State.RecvFrom[0]; got != 1 {
		t.Fatalf("P1 checkpoint recvFrom[0] = %d, want 1", got)
	}
	// P0 never checkpointed.
	if got := w.Envs[0].Stable.Permanent().State.CSN; got != 0 {
		t.Fatalf("P0 permanent csn = %d, want 0", got)
	}
}

func TestDeliveryAndNonComputationIgnored(t *testing.T) {
	w := newWorld(t, 2)
	m := w.Send(0, 1)
	w.Deliver(m)
	if got := w.Envs[1].CaptureState().RecvFrom[0]; got != 1 {
		t.Fatalf("P1 recvFrom[0] = %d, want 1", got)
	}
	// System kinds are ignored without error.
	w.Engines[1].HandleMessage(&protocol.Message{Kind: protocol.KindRequest, From: 0, To: 1})
	w.Engines[1].HandleMessage(&protocol.Message{Kind: protocol.KindCommit, From: 0, To: 1})
	if got := w.Envs[1].TentativeTaken; got != 0 {
		t.Fatalf("system message caused a checkpoint (tentative=%d)", got)
	}
}

func TestRestoreFromCheckpoint(t *testing.T) {
	w := newWorld(t, 2)
	e := w.Engines[0].(*logbased.Engine)
	e.RestoreFromCheckpoint(7)
	if e.CSN() != 7 {
		t.Fatalf("restored csn = %d, want 7", e.CSN())
	}
	if err := e.Initiate(); err != nil {
		t.Fatal(err)
	}
	if got := w.Envs[0].Stable.Permanent().State.CSN; got != 8 {
		t.Fatalf("post-restore initiation csn = %d, want 8", got)
	}
}
