// Package logbased implements independent checkpointing with sender-based
// message logging: the fourth algorithm family of the Table-1-style
// comparison (blocking / all-process / mutable / log-based), after the
// asynchronous-recovery competitors in the paper's related work. No
// coordination happens at checkpoint time — Initiate commits a local
// checkpoint immediately, with zero system messages and zero blocking —
// because consistency is restored at *recovery* time instead: every
// sender logs its computation sends (the runtime's sender-based message
// log, simrt.Config.MessageLogging), and a failed process replays from
// its own latest checkpoint plus its peers' logs, rolling nobody else
// back. Failure-free overhead is the log write; the price is paid only
// when a failure actually happens.
//
// The engine itself is deliberately minimal: all recovery intelligence
// lives in internal/recovery's executor, which replays the logs with
// exactly-once dedup against the restored checkpoint's receive counters.
package logbased

import (
	"mutablecp/internal/protocol"
	"mutablecp/internal/trace"
)

// Engine is the per-process independent-checkpointing state machine.
type Engine struct {
	env protocol.Env
	id  protocol.ProcessID

	csn int // this process's own checkpoint sequence number
}

var (
	_ protocol.Engine             = (*Engine)(nil)
	_ protocol.Blocking           = (*Engine)(nil)
	_ protocol.CheckpointRestorer = (*Engine)(nil)
)

// New returns a log-based engine bound to env.
func New(env protocol.Env) *Engine {
	return &Engine{env: env, id: env.ID()}
}

// Name identifies the algorithm.
func (e *Engine) Name() string { return "log-based" }

// BlocksComputation reports that this algorithm never blocks.
func (e *Engine) BlocksComputation() bool { return false }

// InProgress always reports false: an independent checkpoint is committed
// within the Initiate call, so there is never an instance in flight.
func (e *Engine) InProgress() bool { return false }

// CSN exposes the current checkpoint sequence number (tests).
func (e *Engine) CSN() int { return e.csn }

// PrepareSend stamps an outgoing computation message. The determinant is
// logged by the runtime (sender-based logging is an Env concern — the
// log must survive the engine being rebuilt on recovery), so the engine
// only carries its csn for observability.
func (e *Engine) PrepareSend(m *protocol.Message) {
	m.Kind = protocol.KindComputation
	m.CSN = e.csn
	m.Trigger = protocol.NoTrigger
}

// Initiate takes an independent checkpoint: tentative write, immediate
// commit, done — no coordination, no system messages, no blocking.
func (e *Engine) Initiate() error {
	e.csn++
	trig := protocol.Trigger{Pid: e.id, Inum: e.csn}
	e.env.Trace(trace.KindInitiate, -1, "independent csn=%d", e.csn)
	st := e.env.CaptureState()
	st.CSN = e.csn
	e.env.SaveTentative(st, trig)
	e.env.MakePermanent(trig)
	e.env.Trace(trace.KindPermanent, -1, "csn=%d", e.csn)
	e.env.CheckpointingDone(trig, true)
	return nil
}

// HandleMessage delivers computation messages; there are no system
// messages in this family.
func (e *Engine) HandleMessage(m *protocol.Message) {
	if m.Kind != protocol.KindComputation {
		return
	}
	e.env.Trace(trace.KindReceive, m.From, "csn=%d", m.CSN)
	e.env.DeliverApp(m)
}

// RestoreFromCheckpoint implements protocol.CheckpointRestorer: a rebuilt
// engine resumes its checkpoint numbering from the restored checkpoint.
func (e *Engine) RestoreFromCheckpoint(csn int) { e.csn = csn }
