package elnozahy_test

import (
	"fmt"
	"testing"

	"mutablecp/internal/algorithms/elnozahy"
	"mutablecp/internal/consistency"
	"mutablecp/internal/enginetest"
	"mutablecp/internal/protocol"
	"mutablecp/internal/xrand"
)

func newWorld(t *testing.T, n int) *enginetest.World {
	return enginetest.NewWorld(t, n, func(env protocol.Env) protocol.Engine {
		return elnozahy.New(env)
	})
}

func TestAllProcessesCheckpoint(t *testing.T) {
	w := newWorld(t, 4)
	if err := w.Engines[1].Initiate(); err != nil {
		t.Fatal(err)
	}
	w.Pump()
	if !w.Envs[1].LastCommitted {
		t.Fatal("round did not commit")
	}
	for i := 0; i < 4; i++ {
		if w.Envs[i].TentativeTaken != 1 {
			t.Fatalf("P%d tentative = %d, want 1 (EJZ checkpoints everyone)", i, w.Envs[i].TentativeTaken)
		}
		if got := w.Envs[i].Stable.Permanent().State.CSN; got != 1 {
			t.Fatalf("P%d permanent csn = %d, want 1", i, got)
		}
	}
	if err := consistency.Check(w.Line()); err != nil {
		t.Fatal(err)
	}
}

func TestMessageOverheadIsTwoBroadcastsPlusReplies(t *testing.T) {
	w := newWorld(t, 5)
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	w.Pump()
	// Initiator: request broadcast + commit broadcast = 2 sends; each
	// other process: one reply.
	if got := w.Envs[0].SysSent; got != 2 {
		t.Fatalf("initiator sent %d system messages, want 2 broadcasts", got)
	}
	for i := 1; i < 5; i++ {
		if got := w.Envs[i].SysSent; got != 1 {
			t.Fatalf("P%d sent %d system messages, want 1 reply", i, got)
		}
	}
}

func TestPiggybackedCSNForcesEarlyCheckpoint(t *testing.T) {
	// P0 initiates; before P2 sees the request it receives a computation
	// message from P1 (already checkpointed) carrying the new csn. P2 must
	// checkpoint before processing it — and the final line is consistent.
	w := newWorld(t, 3)
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	// Deliver request to P1 only.
	if m := w.DeliverMatching(func(m *protocol.Message) bool {
		return m.Kind == protocol.KindRequest && m.To == 1
	}); m == nil {
		t.Fatal("no request to P1")
	}
	if w.Envs[1].TentativeTaken != 1 {
		t.Fatal("P1 did not checkpoint on request")
	}
	// P1 sends to P2; P2 hasn't seen the request yet.
	m := w.Send(1, 2)
	w.Deliver(m)
	if w.Envs[2].TentativeTaken != 1 {
		t.Fatal("P2 did not checkpoint on piggybacked csn")
	}
	// P2's checkpoint must precede the message processing.
	if got := w.Envs[2].Stable.Tentative; got == nil {
		t.Fatal("nil accessor")
	}
	w.Pump()
	if !w.Envs[0].LastCommitted {
		t.Fatal("round did not commit")
	}
	if err := consistency.Check(w.Line()); err != nil {
		t.Fatal(err)
	}
	if got := w.Envs[2].Stable.Permanent().State.RecvFrom[1]; got != 0 {
		t.Fatalf("P2's checkpoint records the late message (recv=%d)", got)
	}
	// Everyone still checkpoints exactly once per round.
	for i := 0; i < 3; i++ {
		if w.Envs[i].TentativeTaken != 1 {
			t.Fatalf("P%d tentative = %d", i, w.Envs[i].TentativeTaken)
		}
	}
}

func TestSequentialRounds(t *testing.T) {
	w := newWorld(t, 3)
	for round := 1; round <= 3; round++ {
		init := round % 3
		if err := w.Engines[init].Initiate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		w.Pump()
		for i := 0; i < 3; i++ {
			if got := w.Envs[i].Stable.Permanent().State.CSN; got != round {
				t.Fatalf("round %d: P%d csn = %d", round, i, got)
			}
		}
	}
}

func TestInitiateWhilePendingRejected(t *testing.T) {
	w := newWorld(t, 3)
	if err := w.Engines[0].Initiate(); err != nil {
		t.Fatal(err)
	}
	if err := w.Engines[0].Initiate(); err == nil {
		t.Fatal("second initiate accepted")
	}
	w.Pump()
}

func TestRandomizedConsistency(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := xrand.New(seed)
			w := newWorld(t, 5)
			for round := 0; round < 5; round++ {
				for s := 0; s < 10; s++ {
					from := rng.Intn(w.N)
					to := rng.Intn(w.N - 1)
					if to >= from {
						to++
					}
					w.Send(from, to)
					for len(w.Queue) > 0 && rng.Float64() < 0.5 {
						w.Deliver(w.Queue[0])
					}
				}
				init := rng.Intn(w.N)
				if w.Engines[init].InProgress() {
					w.Pump()
				}
				if err := w.Engines[init].Initiate(); err != nil {
					w.Pump()
					continue
				}
				w.Pump()
				if err := consistency.Check(w.Line()); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
		})
	}
}
