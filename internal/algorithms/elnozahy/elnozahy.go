// Package elnozahy implements the Elnozahy–Johnson–Zwaenepoel consistent
// checkpointing algorithm ([13] in the paper): the nonblocking baseline of
// Table 1. The initiator broadcasts a checkpoint request carrying a new
// checkpoint sequence number; every process in the system takes a
// checkpoint, either on receiving the request or on receiving a
// computation message that piggybacks the new csn first. Message overhead
// is 2·C_broad + N·C_air and no process ever blocks, but all N processes
// transfer checkpoints to stable storage on every initiation.
//
// Checkpoint rounds are system-global and identified by their csn, so the
// engine uses a canonical trigger (Pid 0, Inum csn) for every round
// regardless of which process initiated it: a process forced to checkpoint
// by a piggybacked csn cannot know the initiator's identity.
package elnozahy

import (
	"errors"

	"mutablecp/internal/protocol"
	"mutablecp/internal/trace"
)

// ErrCheckpointInProgress is returned by Initiate while an instance this
// process started is still running.
var ErrCheckpointInProgress = errors.New("elnozahy: checkpointing already in progress")

// roundTrigger canonically names the checkpoint round with sequence csn.
func roundTrigger(csn int) protocol.Trigger { return protocol.Trigger{Pid: 0, Inum: csn} }

// Engine is the per-process EJZ state machine.
type Engine struct {
	env protocol.Env
	id  protocol.ProcessID
	n   int

	csn     int // checkpoint sequence number this process knows
	pending bool
	pendCSN int // csn of the pending tentative checkpoint

	initiating bool
	round      int
	replies    int
}

var (
	_ protocol.Engine             = (*Engine)(nil)
	_ protocol.Blocking           = (*Engine)(nil)
	_ protocol.CheckpointRestorer = (*Engine)(nil)
)

// New returns an EJZ engine bound to env.
func New(env protocol.Env) *Engine {
	return &Engine{env: env, id: env.ID(), n: env.N()}
}

// Name identifies the algorithm.
func (e *Engine) Name() string { return "elnozahy" }

// BlocksComputation reports that this algorithm never blocks.
func (e *Engine) BlocksComputation() bool { return false }

// InProgress reports whether this process has an uncommitted checkpoint.
func (e *Engine) InProgress() bool { return e.pending || e.initiating }

// OwnTrigger returns the canonical trigger of the round this process
// initiated (tests).
func (e *Engine) OwnTrigger() protocol.Trigger { return roundTrigger(e.round) }

// CSN exposes the current sequence number (tests).
func (e *Engine) CSN() int { return e.csn }

// RestoreFromCheckpoint implements protocol.CheckpointRestorer: a
// rebuilt engine resumes the system-global round numbering from the
// restored checkpoint's csn, so its next round is csn+1.
func (e *Engine) RestoreFromCheckpoint(csn int) {
	e.csn = csn
	e.round = csn
}

// PrepareSend piggybacks the current csn on every computation message.
func (e *Engine) PrepareSend(m *protocol.Message) {
	m.Kind = protocol.KindComputation
	m.CSN = e.csn
	m.Trigger = protocol.NoTrigger
}

// Initiate starts a round: take a checkpoint with the next csn and
// broadcast the request (first C_broad).
func (e *Engine) Initiate() error {
	if e.InProgress() {
		return ErrCheckpointInProgress
	}
	e.initiating = true
	e.replies = 0
	e.round = e.csn + 1
	e.env.Trace(trace.KindInitiate, -1, "round=%d", e.round)
	e.takeCheckpoint(e.round)
	e.env.Broadcast(&protocol.Message{
		Kind:    protocol.KindRequest,
		From:    e.id,
		CSN:     e.round,
		Trigger: roundTrigger(e.round),
	})
	return nil
}

// takeCheckpoint writes a tentative checkpoint for the new csn.
func (e *Engine) takeCheckpoint(newCSN int) {
	if e.pending {
		// Already checkpointed this round; just track the csn.
		if newCSN > e.csn {
			e.csn = newCSN
		}
		return
	}
	e.csn = newCSN
	st := e.env.CaptureState()
	st.CSN = e.csn
	e.env.SaveTentative(st, roundTrigger(e.csn))
	e.env.Trace(trace.KindTentative, -1, "csn=%d", e.csn)
	e.pending = true
	e.pendCSN = e.csn
}

// HandleMessage dispatches one arriving message.
func (e *Engine) HandleMessage(m *protocol.Message) {
	switch m.Kind {
	case protocol.KindComputation:
		// Orphan avoidance: the sender checkpointed before sending, so we
		// must checkpoint before processing.
		if m.CSN > e.csn {
			e.takeCheckpoint(m.CSN)
		}
		e.env.Trace(trace.KindReceive, m.From, "csn=%d", m.CSN)
		e.env.DeliverApp(m)
	case protocol.KindRequest:
		if m.CSN > e.csn {
			e.takeCheckpoint(m.CSN)
		}
		e.env.Send(&protocol.Message{
			Kind:    protocol.KindReply,
			From:    e.id,
			To:      m.From,
			Trigger: m.Trigger,
		})
	case protocol.KindReply:
		if !e.initiating || m.Trigger != roundTrigger(e.round) {
			return
		}
		e.replies++
		if e.replies == e.n-1 {
			e.commit()
		}
	case protocol.KindCommit:
		e.applyCommit()
	default:
	}
}

// commit is the initiator's second phase (second C_broad).
func (e *Engine) commit() {
	trig := roundTrigger(e.round)
	e.initiating = false
	e.env.Trace(trace.KindCommit, -1, "broadcast round=%d", e.round)
	e.env.Broadcast(&protocol.Message{
		Kind:    protocol.KindCommit,
		From:    e.id,
		Trigger: trig,
	})
	e.applyCommit()
	e.env.CheckpointingDone(trig, true)
}

func (e *Engine) applyCommit() {
	if !e.pending {
		return
	}
	e.env.MakePermanent(roundTrigger(e.pendCSN))
	e.env.Trace(trace.KindPermanent, -1, "csn=%d", e.pendCSN)
	e.pending = false
}
