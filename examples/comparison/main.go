// Comparison: a compact rendition of the paper's Table 1 — the mutable
// checkpoint algorithm versus Koo–Toueg (blocking, min-process) and
// Elnozahy–Johnson–Zwaenepoel (nonblocking, all-process) under an
// identical workload.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"mutablecp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rate := 0.01
	rows, err := mutablecp.Table1(rate, []uint64{1, 2, 3})
	if err != nil {
		return err
	}
	fmt.Printf("Table 1 reproduction (N=16 hosts on a 2 Mbps wireless LAN, %g msg/s/process)\n\n", rate)
	fmt.Printf("%-15s %-12s %-14s %-19s %-11s %-11s\n",
		"algorithm", "ckpts/init", "blocking (s)", "output commit (s)", "msgs/init", "distributed")
	for _, r := range rows {
		fmt.Printf("%-15s %-12.2f %-14.2f %-19.2f %-11.1f %-11v\n",
			r.Algorithm, r.Checkpoints, r.BlockingSec, r.OutputCommit, r.SysMsgs, r.Distributed)
	}
	fmt.Println("\npaper's analytic entries:")
	for _, r := range rows {
		fmt.Printf("  %-15s %s\n", r.Algorithm, r.Formula)
	}
	fmt.Println("\nreading: the mutable algorithm matches Koo–Toueg's minimum checkpoint")
	fmt.Println("count with zero blocking, and beats Elnozahy's all-process checkpointing")
	fmt.Println("whenever the dependency set is smaller than N.")
	return nil
}
