// Mobility: the paper's mobile-computing scenario under simulated time —
// mobile hosts spread over four cells, handoffs mid-run, one host
// voluntarily disconnected while a coordinated checkpoint runs (its MSS
// answers from the disconnect checkpoint, §2.2), then reconnection with
// buffered-message replay.
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"log"
	"time"

	"mutablecp/internal/consistency"
	"mutablecp/internal/core"
	"mutablecp/internal/des"
	"mutablecp/internal/netsim"
	"mutablecp/internal/protocol"
	"mutablecp/internal/simrt"
	"mutablecp/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var cell *netsim.Cellular
	cluster, err := simrt.New(simrt.Config{
		N:                8,
		Seed:             42,
		SingleInitiation: true,
		NewEngine:        func(env protocol.Env) protocol.Engine { return core.New(env) },
		NewTransport: func(sim *des.Simulator, n int) netsim.Transport {
			cell = netsim.NewCellular(sim, n, netsim.CellularConfig{MSSs: 4})
			return cell
		},
	})
	if err != nil {
		return err
	}

	gen := &workload.PointToPoint{Rate: 0.5}
	gen.Install(cluster)

	// Let traffic build dependencies.
	if err := cluster.Run(60 * time.Second); err != nil {
		return err
	}
	fmt.Printf("t=%-8v traffic running: %d computation messages\n",
		cluster.Sim().Now().Truncate(time.Second), cluster.Metrics().CompMsgs)

	// MH3 moves from its cell to cell 0 (handoff); in-flight messages are
	// resequenced so FIFO holds.
	if err := cell.Handoff(3, 0); err != nil {
		return err
	}
	fmt.Printf("t=%-8v MH3 handed off to cell 0\n", cluster.Sim().Now().Truncate(time.Second))

	// MH5 disconnects voluntarily, leaving a disconnect checkpoint at its
	// MSS. Its computation messages will be buffered.
	cluster.Proc(5).Disconnect()
	fmt.Printf("t=%-8v MH5 disconnected (disconnect_checkpoint stored at MSS)\n",
		cluster.Sim().Now().Truncate(time.Second))

	if err := cluster.Run(cluster.Sim().Now() + 30*time.Second); err != nil {
		return err
	}

	// MH0 initiates a coordinated checkpoint while MH5 is away.
	if !cluster.Proc(0).MaybeInitiate() {
		return fmt.Errorf("MH0 could not initiate")
	}
	if err := cluster.Run(cluster.Sim().Now() + 2*time.Minute); err != nil {
		return err
	}
	recs := cluster.Metrics().Completed()
	if len(recs) == 0 {
		return fmt.Errorf("checkpointing did not terminate")
	}
	rec := recs[len(recs)-1]
	fmt.Printf("t=%-8v checkpoint committed: %d stable checkpoints, %d system msgs, T_ch=%v\n",
		cluster.Sim().Now().Truncate(time.Second), rec.Tentative, rec.SysMsgs,
		rec.Duration().Truncate(time.Millisecond))

	// MH5 reconnects; buffered messages replay in order.
	cluster.Proc(5).Reconnect()
	fmt.Printf("t=%-8v MH5 reconnected\n", cluster.Sim().Now().Truncate(time.Second))

	gen.Stop()
	cluster.StopTimers()
	if err := cluster.Drain(); err != nil {
		return err
	}
	for _, e := range cluster.Errors() {
		return fmt.Errorf("cluster error: %v", e)
	}
	if err := consistency.Check(cluster.PermanentLine()); err != nil {
		return fmt.Errorf("recovery line inconsistent: %w", err)
	}
	fmt.Printf("\nfinal recovery line consistent across %d hosts; handoffs=%d resequenced=%d\n",
		cluster.N(), cell.Handoffs, cell.Reordered)
	return nil
}
