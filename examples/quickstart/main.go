// Quickstart: run the mutable-checkpoint algorithm as a live concurrent
// system — four processes exchanging messages over in-memory channels,
// one coordinated checkpoint, and a verified recovery line.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mutablecp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	trace := mutablecp.NewTraceLog()
	cluster, err := mutablecp.NewLiveCluster(mutablecp.LiveOptions{
		N:     4,
		Trace: trace,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Some application traffic: a ring of messages creating dependencies.
	for i := 0; i < 12; i++ {
		from := i % 4
		to := (i + 1) % 4
		if err := cluster.Send(from, to, []byte(fmt.Sprintf("msg-%d", i))); err != nil {
			return err
		}
	}
	cluster.Quiesce(20 * time.Millisecond)

	// P0 initiates a coordinated checkpoint. Only processes P0 depends on
	// (transitively) write checkpoints to stable storage; nobody blocks.
	committed, err := cluster.Checkpoint(0, 5*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint committed: %v\n", committed)

	cluster.Quiesce(20 * time.Millisecond)
	line := cluster.RecoveryLine()
	if err := mutablecp.VerifyConsistent(line); err != nil {
		return fmt.Errorf("recovery line inconsistent: %w", err)
	}
	fmt.Println("recovery line (consistent):")
	for p := 0; p < 4; p++ {
		st := line[p]
		fmt.Printf("  P%d: checkpoint #%d, sent=%v recv=%v\n", p, st.CSN, st.SentTo, st.RecvFrom)
	}

	fmt.Printf("\nprotocol events recorded: %d (last few below)\n", trace.Len())
	evs := trace.Events()
	if len(evs) > 8 {
		evs = evs[len(evs)-8:]
	}
	for _, e := range evs {
		fmt.Println(" ", e)
	}
	return nil
}
