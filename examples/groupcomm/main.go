// Groupcomm: the paper's group-communication environment (§5.1, Fig. 6) —
// four groups of four mobile hosts, leaders carrying all inter-group
// traffic — showing that checkpoint initiations touch mostly the
// initiator's own group.
//
//	go run ./examples/groupcomm
package main

import (
	"fmt"
	"log"

	"mutablecp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("group communication, intra/inter rate ratio sweep (N=16, 4 groups)")
	fmt.Printf("%-8s %-10s %-22s %-22s\n", "ratio", "rate", "tentative ckpts/init", "redundant mutable/init")
	for _, ratio := range []float64{1000, 10000} {
		for _, rate := range []float64{0.01, 0.05, 0.2} {
			res, err := mutablecp.RunExperiment(mutablecp.ExperimentConfig{
				Algorithm:  mutablecp.AlgoMutable,
				Workload:   mutablecp.WorkloadGroup,
				Rate:       rate,
				GroupRatio: ratio,
				Seed:       7,
			})
			if err != nil {
				return err
			}
			if !res.ConsistencyOK {
				return fmt.Errorf("ratio %g rate %g: %v", ratio, rate, res.ConsistencyErr)
			}
			fmt.Printf("%-8g %-10g %8.2f ± %-12.2f %8.4f ± %-12.4f\n",
				ratio, rate,
				res.Tentative.Mean(), res.Tentative.CI95(),
				res.Redundant.Mean(), res.Redundant.CI95())
		}
	}
	fmt.Println("\ncompare with point-to-point at the same rates:")
	for _, rate := range []float64{0.01, 0.05, 0.2} {
		res, err := mutablecp.RunExperiment(mutablecp.ExperimentConfig{
			Algorithm: mutablecp.AlgoMutable,
			Workload:  mutablecp.WorkloadP2P,
			Rate:      rate,
			Seed:      7,
		})
		if err != nil {
			return err
		}
		fmt.Printf("p2p      %-10g %8.2f ± %-12.2f %8.4f\n",
			rate, res.Tentative.Mean(), res.Tentative.CI95(), res.Redundant.Mean())
	}
	return nil
}
