// Energy: the paper's doze-mode motivation (§1) meets the §3.3.5 commit
// dissemination trade-off. Half the mobile hosts doze; the broadcast
// commit wakes every one of them on every checkpoint round, while the
// targeted "update approach" leaves them asleep at the cost of a few
// extra point-to-point messages.
//
//	go run ./examples/energy
package main

import (
	"fmt"
	"log"

	"mutablecp/internal/harness"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const dozing = 8
	fmt.Printf("N=16 mobile hosts, %d dozing; traffic among the other %d at 0.05 msg/s\n\n",
		dozing, 16-dozing)
	rows, err := harness.CommitFanout(0.05, dozing, harness.QuickSeeds(2))
	if err != nil {
		return err
	}
	fmt.Println(harness.FormatFanout(0.05, dozing, rows))
	fmt.Println("reading: a dozing host pays a wakeup (radio + CPU power-up) per")
	fmt.Println("arriving message. The broadcast second phase bills every dozing")
	fmt.Println("host once per checkpoint round; the update approach (commits to")
	fmt.Println("repliers, forwarded along sent-while-checkpointing sets) never")
	fmt.Println("touches them — the paper's suggested tuning knob in §3.3.5.")
	return nil
}
