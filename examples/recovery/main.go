// Recovery: fail a mobile host mid-run and roll the system back to the
// last committed recovery line. Demonstrates §3.6 (abort of an in-flight
// instance when a participant fails) and the rollback-cost accounting of
// the recovery manager.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"
	"time"

	"mutablecp/internal/checkpoint"
	"mutablecp/internal/core"
	"mutablecp/internal/protocol"
	"mutablecp/internal/recovery"
	"mutablecp/internal/simrt"
	"mutablecp/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := simrt.New(simrt.Config{
		N:                   8,
		Seed:                17,
		SingleInitiation:    true,
		ScheduleCheckpoints: true,
		NewEngine:           func(env protocol.Env) protocol.Engine { return core.New(env) },
	})
	if err != nil {
		return err
	}
	gen := &workload.PointToPoint{Rate: 0.2}
	gen.Install(cluster)
	cluster.Start()

	// Run long enough for a few committed checkpoint rounds.
	if err := cluster.Run(40 * time.Minute); err != nil {
		return err
	}
	committed := 0
	for _, rec := range cluster.Metrics().Completed() {
		if rec.Committed {
			committed++
		}
	}
	fmt.Printf("t=%v: %d checkpoint rounds committed\n",
		cluster.Sim().Now().Truncate(time.Second), committed)

	// An instance is started and then its initiator "detects a failure":
	// the whole instance aborts (§3.6) and the recovery line stays put.
	if !cluster.Proc(2).MaybeInitiate() {
		fmt.Println("(P2 busy; skipping explicit abort demo)")
	} else {
		eng := cluster.Proc(2).Engine().(*core.Engine)
		if eng.Initiating() {
			if err := eng.AbortCurrent(); err != nil {
				return err
			}
			fmt.Println("in-flight instance aborted after simulated participant failure")
		}
	}
	gen.Stop()
	cluster.StopTimers()
	if err := cluster.Drain(); err != nil {
		return err
	}

	// MH4 fails: everything volatile on it is gone (mutable checkpoints
	// included); stable checkpoints at the MSSs survive.
	cluster.Proc(4).Mutable().Clear()
	fmt.Println("MH4 failed: volatile state lost, stable checkpoints survive at MSSs")

	stores := make(map[protocol.ProcessID]checkpoint.Store, cluster.N())
	for i := 0; i < cluster.N(); i++ {
		stores[i] = cluster.Proc(i).Stable()
	}
	mgr := recovery.NewManager(stores)
	line, err := mgr.LatestLine()
	if err != nil {
		return fmt.Errorf("recovery line invalid: %w", err)
	}
	fmt.Println("recovery line validated (no orphan messages)")

	cost := mgr.Cost(line, cluster.States(), cluster.Sim().Now())
	fmt.Printf("rollback discards %v of computation and %d sent messages in total\n",
		cost.TotalTime.Truncate(time.Second), cost.TotalMsgs)
	for p := 0; p < cluster.N(); p++ {
		fmt.Printf("  P%d rolls back to checkpoint #%d (%v of work lost)\n",
			p, line.Checkpoints[p].State.CSN, cost.LostTime[p].Truncate(time.Second))
	}

	transit, err := mgr.InTransit(line)
	if err != nil {
		return err
	}
	fmt.Printf("channels with in-transit messages to replay: %d\n", len(transit))
	return nil
}
